#pragma once

// Distributed AAM runtime (§3.2, §4.2, §5.6).
//
// Spawners route single-element operator invocations to the owner node of
// the element. Invocations targeting the same remote node are *coalesced*
// into one atomic active message of up to C items (§4.2); the receiving
// node executes each message's batch as ONE hardware transaction (the
// inter-node form of coarsening, §5.6). Local invocations are batched the
// same way without network cost.
//
// Fire-and-Return support: an FR operator returns a 64-bit result per item;
// non-zero results are coalesced into a reply message to the spawner node,
// where the registered *failure handler* runs (§3.2.1).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/executor.hpp"
#include "core/taxonomy.hpp"
#include "net/cluster.hpp"

namespace aam::core {

class DistributedRuntime {
 public:
  struct Options {
    int coalesce = 16;     ///< C: items per atomic active message
    int local_batch = 16;  ///< M: items per locally-spawned activity
    /// Receiver-side synchronization for operator batches (§4.1): one
    /// coarse transaction per batch by default.
    Mechanism mechanism = Mechanism::kHtmCoarsened;
    /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
    ExecutorDecorator* decorator = nullptr;
  };

  /// Optional receiver-side sharding (§4.2: the runtime "reduces the
  /// amount of synchronization even further"): maps an item to a local
  /// thread index in [0, threads_per_node). Incoming batches are split by
  /// shard and each sub-batch executes only on its owning thread, so
  /// concurrent transactions on one node never overlap — eliminating
  /// intra-node conflict aborts for partitionable operators. The mapping
  /// must be line-granular (items sharing a cache line on the same shard).
  using ShardFn = std::function<std::uint32_t(std::uint64_t item)>;
  void set_sharding(ShardFn shard) { shard_ = std::move(shard); }

  /// FF operator: modifies elements through the executor's Access surface,
  /// returns nothing.
  using ItemOp = std::function<void(Access&, std::uint64_t item)>;
  /// FR operator: returns 0 for "nothing to report" or a non-zero result
  /// that flows back to the spawner's failure handler.
  using ItemOpFr = std::function<std::uint64_t(Access&, std::uint64_t item)>;
  using FailureHandler =
      std::function<void(htm::ThreadCtx&, std::uint64_t result)>;

  DistributedRuntime(net::Cluster& cluster, Options options);

  /// Configure as Fire-and-Forget (PageRank, BFS styles).
  void set_operator(ItemOp op);
  /// Configure as Fire-and-Return with a failure handler (ST connectivity,
  /// coloring, Boruvka styles).
  void set_operator_fr(ItemOpFr op, FailureHandler on_result);

  /// Non-transactional apply path: items are applied with per-item plain /
  /// atomic operations on the receiving thread instead of a coarse
  /// transaction. Used by AM baselines (the PBGL-like PageRank of §6.2)
  /// for an apples-to-apples comparison against AAM's coarse activities.
  using ItemOpPlain = std::function<void(htm::ThreadCtx&, std::uint64_t item)>;
  void set_operator_plain(ItemOpPlain op, double per_item_overhead_ns = 0.0);

  /// Spawner API: route `item` to its owner. Local items are buffered into
  /// per-thread batches; remote ones into per-thread coalescing buffers.
  /// May stage a transaction (when a local batch fills) — the caller must
  /// stop issuing work for this next() round once ctx.has_staged().
  void spawn(htm::ThreadCtx& ctx, int owner_node, std::uint64_t item);

  /// Flushes this thread's partial buffers (local batch and coalescers).
  /// May stage a transaction; check ctx.has_staged() afterwards.
  void flush(htm::ThreadCtx& ctx);

  /// Receiver progress: executes one pending batch (incoming message or
  /// local batch) as a single transaction. Returns true if it staged work
  /// or processed a message. Call from workers when out of spawn work.
  bool progress(htm::ThreadCtx& ctx);

  /// True when no batches are pending anywhere and nothing is in flight.
  /// (Per-thread partial buffers are the caller's responsibility: flush.)
  bool drained() const;

  std::uint64_t items_executed() const { return items_executed_; }
  std::uint64_t batches_executed() const { return batches_executed_; }
  net::Cluster& cluster() { return cluster_; }

  /// A convenience worker: drains incoming work, then produces spawns via
  /// `produce` (return false when out of items), then flushes and parks.
  class Worker : public htm::Worker {
   public:
    explicit Worker(DistributedRuntime& rt) : rt_(rt) {}
    bool next(htm::ThreadCtx& ctx) final;

   protected:
    /// Issue some spawn() calls; return false when production is finished.
    /// Must return promptly once ctx.has_staged(). The default produces
    /// nothing — a pure consumer/receiver worker.
    virtual bool produce(htm::ThreadCtx& ctx) {
      (void)ctx;
      return false;
    }

   private:
    DistributedRuntime& rt_;
    bool production_done_ = false;
    bool flushed_ = false;
  };

 private:
  struct Batch {
    std::vector<std::uint64_t> items;
    int reply_node = -1;  ///< for FR: where results go (-1: local batch)
  };

  void stage_batch(htm::ThreadCtx& ctx, Batch batch);
  void enqueue_local(int node, std::vector<std::uint64_t> items);

  net::Cluster& cluster_;
  Options options_;
  std::unique_ptr<ActivityExecutor> executor_;
  ItemOp op_ff_;
  ItemOpFr op_fr_;
  ItemOpPlain op_plain_;
  double plain_overhead_ns_ = 0.0;
  FailureHandler on_result_;
  std::uint32_t op_handler_ = 0;
  std::uint32_t reply_handler_ = 0;

  // Per sending thread: remote coalescers and local batch buffers.
  std::vector<net::Coalescer> coalescers_;
  std::vector<std::vector<std::uint64_t>> local_buffers_;

  // Per node: batches awaiting transactional execution; with sharding,
  // per-thread queues are used instead.
  std::vector<std::deque<Batch>> pending_;
  std::vector<std::deque<Batch>> pending_sharded_;  // per global thread id
  std::uint64_t pending_total_ = 0;
  ShardFn shard_;

  void enqueue_batch(int node, Batch batch);

  std::uint64_t items_executed_ = 0;
  std::uint64_t batches_executed_ = 0;
};

}  // namespace aam::core
