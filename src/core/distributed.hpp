#pragma once

// Distributed AAM runtime (§3.2, §4.2, §5.6).
//
// Spawners route single-element operator invocations to the owner node of
// the element. Invocations targeting the same remote node are *coalesced*
// into one atomic active message of up to C items (§4.2); the receiving
// node executes each message's batch as ONE hardware transaction (the
// inter-node form of coarsening, §5.6). Local invocations are batched the
// same way without network cost.
//
// Fire-and-Return support: an FR operator returns a 64-bit result per item;
// non-zero results are coalesced into a reply message to the spawner node,
// where the registered *failure handler* runs (§3.2.1).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/executor.hpp"
#include "core/executor_impl.hpp"
#include "core/taxonomy.hpp"
#include "htm/resilience.hpp"
#include "net/cluster.hpp"

namespace aam::core {

class DistributedRuntime {
 public:
  struct Options {
    int coalesce = 16;     ///< C: items per atomic active message
    int local_batch = 16;  ///< M: items per locally-spawned activity
    /// Receiver-side synchronization for operator batches (§4.1): one
    /// coarse transaction per batch by default.
    Mechanism mechanism = Mechanism::kHtmCoarsened;
    /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
    ExecutorDecorator* decorator = nullptr;
  };

  /// Optional receiver-side sharding (§4.2: the runtime "reduces the
  /// amount of synchronization even further"): maps an item to a local
  /// thread index in [0, threads_per_node). Incoming batches are split by
  /// shard and each sub-batch executes only on its owning thread, so
  /// concurrent transactions on one node never overlap — eliminating
  /// intra-node conflict aborts for partitionable operators. The mapping
  /// must be line-granular (items sharing a cache line on the same shard).
  using ShardFn = std::function<std::uint32_t(std::uint64_t item)>;
  void set_sharding(ShardFn shard) { shard_ = std::move(shard); }

  /// FF operator: modifies elements through the executor's Access surface,
  /// returns nothing. (Legacy alias — the setters are templated and the
  /// runtime type-erases per *batch*, not per item.)
  using ItemOp = std::function<void(Access&, std::uint64_t item)>;
  /// FR operator: returns 0 for "nothing to report" or a non-zero result
  /// that flows back to the spawner's failure handler.
  using ItemOpFr = std::function<std::uint64_t(Access&, std::uint64_t item)>;
  using FailureHandler =
      std::function<void(htm::ThreadCtx&, std::uint64_t result)>;

  DistributedRuntime(net::Cluster& cluster, Options options);

  /// Configure as Fire-and-Forget (PageRank, BFS styles). The operator
  /// must be generic over the access type (`[](auto& access, item)`): it
  /// is instantiated against the concrete executor's access type on the
  /// fast path and against core::Access under a check decorator.
  template <typename Op>
  void set_operator(Op op, OperatorId op_id = OperatorId::kUnknown) {
    mode_ = Mode::kFf;
    on_result_ = nullptr;
    op_plain_ = nullptr;
    exec_fn_ = [this, op = std::move(op), op_id](htm::ThreadCtx& ctx,
                                                 Batch batch) mutable {
      // One coarse activity per batch (coalesced, §5.6), applied under
      // the configured mechanism. The count must be read before the
      // move-capture below empties batch.items (function arguments are
      // unsequenced relative to each other).
      const std::uint64_t n = batch.items.size();
      execute_batch(*executor_, ctx, n,
                    [&op, items = std::move(batch.items)](
                        auto& access, std::uint64_t i) {
                      op(access, items[i]);
                    },
                    {}, op_id);
    };
  }

  /// Configure as Fire-and-Return with a failure handler (ST connectivity,
  /// coloring, Boruvka styles). Same genericity requirement as
  /// set_operator; the handler stays type-erased (rare, per-result).
  template <typename Op>
  void set_operator_fr(Op op, FailureHandler on_result,
                       OperatorId op_id = OperatorId::kUnknown) {
    mode_ = Mode::kFr;
    on_result_ = std::move(on_result);
    op_plain_ = nullptr;
    exec_fn_ = [this, op = std::move(op), op_id](htm::ThreadCtx& ctx,
                                                 Batch batch) mutable {
      // Non-zero per-item results are emitted through the executor (which
      // keeps them re-execution-safe) and flow back to the spawner. The
      // count must be read before the move-capture empties batch.items.
      const int reply_node = batch.reply_node;
      const std::uint64_t n = batch.items.size();
      execute_batch(
          *executor_, ctx, n,
          [&op, items = std::move(batch.items)](auto& access,
                                                std::uint64_t i) {
            const std::uint64_t r = op(access, items[i]);
            if (r != 0) access.emit(r);
          },
          [this, reply_node](htm::ThreadCtx& done_ctx,
                             std::span<const std::uint64_t> results) {
            reply(done_ctx, reply_node, results);
          },
          op_id);
    };
  }

  /// Non-transactional apply path: items are applied with per-item plain /
  /// atomic operations on the receiving thread instead of a coarse
  /// transaction. Used by AM baselines (the PBGL-like PageRank of §6.2)
  /// for an apples-to-apples comparison against AAM's coarse activities.
  using ItemOpPlain = std::function<void(htm::ThreadCtx&, std::uint64_t item)>;
  void set_operator_plain(ItemOpPlain op, double per_item_overhead_ns = 0.0);

  /// Spawner API: route `item` to its owner. Local items are buffered into
  /// per-thread batches; remote ones into per-thread coalescing buffers.
  /// May stage a transaction (when a local batch fills) — the caller must
  /// stop issuing work for this next() round once ctx.has_staged().
  void spawn(htm::ThreadCtx& ctx, int owner_node, std::uint64_t item);

  /// Flushes this thread's partial buffers (local batch and coalescers).
  /// May stage a transaction; check ctx.has_staged() afterwards.
  void flush(htm::ThreadCtx& ctx);

  /// Receiver progress: executes one pending batch (incoming message or
  /// local batch) as a single transaction. Returns true if it staged work
  /// or processed a message. Call from workers when out of spawn work.
  bool progress(htm::ThreadCtx& ctx);

  /// True when no batches are pending anywhere and nothing is in flight.
  /// (Per-thread partial buffers are the caller's responsibility: flush.)
  bool drained() const;

  std::uint64_t items_executed() const { return items_executed_; }
  std::uint64_t batches_executed() const { return batches_executed_; }
  net::Cluster& cluster() { return cluster_; }

  /// Checkpoint support (src/recovery/): serializes the runtime's durable
  /// host state — coalescer and local-batch buffers, the pending batch
  /// queues, and the executor's control state. Registered automatically
  /// with the machine's RecoveryClient; these are public for tests.
  void save_state(util::BlobWriter& w) const;
  void restore_state(util::BlobReader& r);

  /// A convenience worker: drains incoming work, then produces spawns via
  /// `produce` (return false when out of items), then flushes and parks.
  class Worker : public htm::Worker {
   public:
    explicit Worker(DistributedRuntime& rt) : rt_(rt) {}
    bool next(htm::ThreadCtx& ctx) final;

   protected:
    /// Issue some spawn() calls; return false when production is finished.
    /// Must return promptly once ctx.has_staged(). The default produces
    /// nothing — a pure consumer/receiver worker.
    virtual bool produce(htm::ThreadCtx& ctx) {
      (void)ctx;
      return false;
    }

   public:
    /// Checkpoint support: the production/flush phase flags are durable.
    /// Subclasses with their own production state extend both.
    virtual void save_state(util::BlobWriter& w) const {
      w.put<std::uint8_t>(production_done_ ? 1 : 0);
      w.put<std::uint8_t>(flushed_ ? 1 : 0);
    }
    virtual void restore_state(util::BlobReader& r) {
      production_done_ = r.get<std::uint8_t>() != 0;
      flushed_ = r.get<std::uint8_t>() != 0;
    }

   private:
    DistributedRuntime& rt_;
    bool production_done_ = false;
    bool flushed_ = false;
  };

 private:
  struct Batch {
    std::vector<std::uint64_t> items;
    int reply_node = -1;  ///< for FR: where results go (-1: local batch)
  };

  enum class Mode { kNone, kFf, kFr, kPlain };

  /// Batch-granular type erasure: owns the registered operator and runs
  /// one pending Batch through the executor. Alive as long as the
  /// registration, so transactions staged against it never dangle.
  using ExecFn = std::function<void(htm::ThreadCtx&, Batch)>;

  void stage_batch(htm::ThreadCtx& ctx, Batch batch);
  void enqueue_local(int node, std::vector<std::uint64_t> items);
  /// Routes committed FR results to `reply_node` (runs the failure
  /// handler locally or sends a reply message).
  void reply(htm::ThreadCtx& ctx, int reply_node,
             std::span<const std::uint64_t> results);

  net::Cluster& cluster_;
  Options options_;
  std::unique_ptr<ActivityExecutor> executor_;
  Mode mode_ = Mode::kNone;
  ExecFn exec_fn_;
  ItemOpPlain op_plain_;
  double plain_overhead_ns_ = 0.0;
  FailureHandler on_result_;
  std::uint32_t op_handler_ = 0;
  std::uint32_t reply_handler_ = 0;

  // Per sending thread: remote coalescers and local batch buffers.
  std::vector<net::Coalescer> coalescers_;
  std::vector<std::vector<std::uint64_t>> local_buffers_;

  // Per node: batches awaiting transactional execution; with sharding,
  // per-thread queues are used instead.
  std::vector<std::deque<Batch>> pending_;
  std::vector<std::deque<Batch>> pending_sharded_;  // per global thread id
  std::uint64_t pending_total_ = 0;
  ShardFn shard_;

  void enqueue_batch(int node, Batch batch);

  std::uint64_t items_executed_ = 0;
  std::uint64_t batches_executed_ = 0;

  // Checkpoint registration (src/recovery/): no-op when the machine has no
  // recovery client. Declared last so registration happens after the
  // buffers exist and unregistration before they are torn down.
  htm::ScopedHostState ckpt_;
};

}  // namespace aam::core
