#include "core/runtime.hpp"

#include "util/check.hpp"

namespace aam::core {

class AamRuntime::BatchWorker : public htm::Worker {
 public:
  explicit BatchWorker(AamRuntime& rt) : rt_(rt) {}

  bool next(htm::ThreadCtx& ctx) override {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    const int m = rt_.adaptive_ ? rt_.adaptive_->batch() : rt_.options_.batch;
    if (!rt_.cursor_.claim(ctx, rt_.count_, static_cast<std::uint32_t>(m),
                           begin, end)) {
      return false;
    }
    // One coarse activity: M operator invocations in a single transaction
    // (§4.2, Listing 8). The body may re-execute on retries, so it must
    // derive everything from (begin, end) and transactional state.
    htm::TxnDone done;
    if (rt_.adaptive_ != nullptr) {
      done = [this](htm::ThreadCtx&, const htm::TxnOutcome& outcome) {
        rt_.adaptive_->record(outcome);
      };
    }
    ctx.stage_transaction(
        [this, begin, end](htm::Txn& tx) {
          for (std::uint64_t i = begin; i < end; ++i) rt_.op_(tx, i);
        },
        std::move(done));
    return true;
  }

 private:
  AamRuntime& rt_;
};

AamRuntime::AamRuntime(htm::DesMachine& machine, Options options)
    : machine_(machine), options_(options), cursor_(machine.heap()) {
  AAM_CHECK(options_.batch >= 1);
  const int threads = machine_.num_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.push_back(std::make_unique<BatchWorker>(*this));
    machine_.set_worker(static_cast<std::uint32_t>(t), workers_.back().get());
  }
}

AamRuntime::~AamRuntime() = default;

void AamRuntime::for_each(std::uint64_t count, ItemOp op) {
  cursor_.reset_direct();
  op_ = std::move(op);
  count_ = count;
  machine_.run();
  op_ = nullptr;
}

}  // namespace aam::core
