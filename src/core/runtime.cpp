#include "core/runtime.hpp"

#include "util/check.hpp"

namespace aam::core {

class AamRuntime::BatchWorker : public htm::Worker {
 public:
  explicit BatchWorker(AamRuntime& rt) : rt_(rt) {}

  bool next(htm::ThreadCtx& ctx) override {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    const int m = rt_.executor_->preferred_batch();
    if (!rt_.cursor_.claim(ctx, rt_.count_, static_cast<std::uint32_t>(m),
                           begin, end)) {
      return false;
    }
    // One coarse activity: the executor applies the claimed chunk under
    // its mechanism (a single transaction for kHtmCoarsened, per-item
    // synchronization otherwise). Bodies may re-execute on retries, so
    // everything derives from (begin, end) and executor-visible state.
    rt_.batch_fn_(ctx, begin, end);
    return true;
  }

 private:
  AamRuntime& rt_;
};

AamRuntime::AamRuntime(htm::DesMachine& machine, Options options)
    : machine_(machine),
      executor_(make_executor(
          options.mechanism, machine,
          {.batch = options.batch, .decorator = options.decorator,
           .auto_policy = options.auto_policy})),
      cursor_(machine.heap()),
      ckpt_(machine.recovery_client(),
            {.save =
                 [this](std::vector<std::uint8_t>& out) {
                   util::BlobWriter w;
                   executor_->save_state(w);
                   out = w.take();
                 },
             .restore =
                 [this](const std::uint8_t* data, std::size_t len) {
                   util::BlobReader r(data, len);
                   executor_->restore_state(r);
                 }}) {
  AAM_CHECK(options.batch >= 1);
  const int threads = machine_.num_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.push_back(std::make_unique<BatchWorker>(*this));
    machine_.set_worker(static_cast<std::uint32_t>(t), workers_.back().get());
  }
}

AamRuntime::~AamRuntime() = default;

void AamRuntime::run_batches(std::uint64_t count, BatchFn fn) {
  cursor_.reset_direct();
  batch_fn_ = std::move(fn);
  count_ = count;
  machine_.run();
  batch_fn_ = nullptr;
}

}  // namespace aam::core
