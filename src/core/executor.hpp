#pragma once

// Pluggable activity executors (§4.1, §6.1).
//
// The paper's central comparison treats coarsened HTM transactions, atomic
// operations, and fine-grained locks as interchangeable ways of applying a
// batch of single-element operators. This header makes that seam explicit:
// an ActivityExecutor applies `count` operator invocations under ONE
// synchronization mechanism, and every algorithm is written once against
// the mechanism-neutral `Access` surface.
//
//   kHtmCoarsened — M operators per hardware transaction (§4.2 Listing 8);
//                   the AAM default, with adaptive-M support.
//   kAtomicOps    — one CAS/ACC per item, Graph500-style (§6.1 baseline).
//   kFineLocks    — per-element striped spinlock around each guarded
//                   update, Galois-like (§6.1.2).
//   kSerialLock   — one global lock around the whole batch: the §4.1
//                   coarse-lock lower bound.
//   kStm          — the TL2-flavoured software TM (§8), run through the
//                   same interface with a first-order cost model.
//
// Operator results that must survive transactional re-execution (claimed
// vertices, recolor requests, FR replies) are not returned from the body —
// bodies may run several times on aborts. Instead the operator calls
// `Access::emit(value)`; the executor stages emissions per attempt and the
// `BatchDone` callback receives exactly the committed attempt's values.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/adaptive.hpp"
#include "htm/des_engine.hpp"
#include "htm/stm_engine.hpp"
#include "util/blob.hpp"

namespace aam::util {
class Cli;
}

namespace aam::core {

enum class Mechanism {
  kHtmCoarsened,
  kAtomicOps,
  kFineLocks,
  kSerialLock,
  kStm,
};

/// Identity of the operator body a batch executes. Call sites that route a
/// named operator from algorithms/operators.hpp tag their batches so the
/// check:: layer can hold the dynamic footprint against the operator's
/// static effect signature (src/analysis/). kUnknown batches (ad-hoc
/// lambdas, baselines) are executed identically but skip that audit.
enum class OperatorId : std::uint8_t {
  kUnknown = 0,
  kBfsVisit,
  kPagerankPush,
  kSsspRelax,
  kUfRoot,
  kUfUnion,
  kColorAssign,
  kStVisit,
};

/// Canonical operator names ("bfs_visit", ...); "?" for kUnknown.
const char* to_string(OperatorId op);

/// The analyzable operators, in enum order (excludes kUnknown).
std::span<const OperatorId> all_operator_ids();

/// Canonical names: "htm", "atomics", "fine-locks", "serial-lock", "stm".
const char* to_string(Mechanism mechanism);

/// Inverse of to_string (exact match only); nullopt for unknown names.
std::optional<Mechanism> parse_mechanism(std::string_view name);

/// All mechanisms, in enum order (for sweeps and tests).
std::span<const Mechanism> all_mechanisms();

/// Comma-separated list of the canonical mechanism names (diagnostics).
std::string mechanism_names();

/// The full diagnostic emitted when `value` is not a mechanism name:
/// names the flag, echoes the offending value, and lists every valid
/// spelling. Split out from mechanism_flag so tests can pin the format.
std::string mechanism_error(const std::string& flag, const std::string& value);

/// Reads `--<flag>=<name>` through the canonical Mechanism names; aborts
/// with mechanism_error() on a bad value.
Mechanism mechanism_flag(util::Cli& cli, const std::string& flag,
                         Mechanism def);

/// A --mechanism value at a seam that also accepts "auto": either one
/// fixed mechanism or the policy-driven auto dispatch.
struct MechanismSelection {
  std::optional<Mechanism> fixed;  ///< nullopt = auto
  bool is_auto() const { return !fixed.has_value(); }
};

/// Parses a mechanism name or "auto"; nullopt for anything else.
std::optional<MechanismSelection> parse_mechanism_selection(
    std::string_view name);

/// mechanism_names() plus the "auto" spelling (diagnostics).
std::string mechanism_selection_names();

/// One-line diagnostic for a bad auto-capable --mechanism value; same
/// shape as mechanism_error / check_error / fault flag errors.
std::string mechanism_selection_error(const std::string& flag,
                                      const std::string& value);

/// Reads `--<flag>=<name>` accepting every mechanism name plus "auto";
/// exits 2 with mechanism_selection_error() on a bad value.
MechanismSelection mechanism_selection_flag(util::Cli& cli,
                                            const std::string& flag,
                                            const std::string& def);

/// Mechanism-neutral memory access surface handed to operators. Typed
/// overloads (rather than a word-granular API) so that the atomic
/// executors never CAS a full 8-byte word when the element is a packed
/// 4-byte vertex — adjacent elements must stay independent.
class Access {
 public:
  virtual ~Access() = default;

  virtual std::uint32_t load(const std::uint32_t& ref) = 0;
  virtual std::uint64_t load(const std::uint64_t& ref) = 0;
  virtual double load(const double& ref) = 0;

  virtual void store(std::uint32_t& ref, std::uint32_t value) = 0;
  virtual void store(std::uint64_t& ref, std::uint64_t value) = 0;
  virtual void store(double& ref, double value) = 0;

  /// Guarded compare-and-swap: atomic w.r.t. the executor's mechanism.
  virtual bool cas(std::uint32_t& ref, std::uint32_t expect,
                   std::uint32_t desired) = 0;
  virtual bool cas(std::uint64_t& ref, std::uint64_t expect,
                   std::uint64_t desired) = 0;
  virtual bool cas(double& ref, double expect, double desired) = 0;

  virtual std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) = 0;
  virtual double fetch_add(double& ref, double delta) = 0;

  /// True when accesses are buffered into a transaction (the operator may
  /// rely on all-or-nothing visibility of its writes).
  virtual bool transactional() const = 0;

  /// Records a per-item result for the batch's BatchDone callback. Under a
  /// transactional executor the emissions of aborted attempts are
  /// discarded; only the committed attempt's values are delivered.
  /// (Virtual so wrappers — e.g. the check:: recording layer — can route
  /// emissions to the wrapped executor's staging buffer.)
  virtual void emit(std::uint64_t value) { results_->push_back(value); }

 protected:
  explicit Access(std::vector<std::uint64_t>* results) : results_(results) {}

 private:
  std::vector<std::uint64_t>* results_;
};

/// Adapts the threaded STM transaction to the Access surface. Used by the
/// in-simulator kStm executor and directly by the real-thread backend
/// (algorithms/threaded.cpp), so operator formulations are shared.
/// `results` may be null only if the operator never calls emit().
class StmAccess final : public Access {
 public:
  explicit StmAccess(htm::StmTxn& tx,
                     std::vector<std::uint64_t>* results = nullptr)
      : Access(results), tx_(tx) {}

  std::uint32_t load(const std::uint32_t& ref) override { return tx_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return tx_.load(ref); }
  double load(const double& ref) override { return tx_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    tx_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    tx_.store(ref, value);
  }
  void store(double& ref, double value) override { tx_.store(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return tx_.fetch_add(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return tx_.fetch_add(ref, delta);
  }
  bool transactional() const override { return true; }

 private:
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    if (tx_.load(ref) != expect) return false;
    tx_.store(ref, desired);
    return true;
  }

  htm::StmTxn& tx_;
};

/// Applies batches of single-element operators under one mechanism.
class ActivityExecutor {
 public:
  /// The single-element operator: item indices are [0, count) within the
  /// batch passed to execute(). Captured references must stay valid until
  /// the batch's BatchDone fires (transactional executors run the batch
  /// after the staging next() call returns).
  using ItemOp = std::function<void(Access&, std::uint64_t item)>;
  /// Fires exactly once per execute() with the committed emissions.
  using BatchDone =
      std::function<void(htm::ThreadCtx&, std::span<const std::uint64_t>)>;
  /// Host-side observer of per-activity transaction outcomes (HTM executor
  /// only): the auto-dispatch layer uses it to validate predicted abort
  /// rates against live telemetry. Never charges simulated cost.
  using OutcomeHook =
      std::function<void(htm::ThreadCtx&, const htm::TxnOutcome&)>;

  virtual ~ActivityExecutor() = default;

  ActivityExecutor(const ActivityExecutor&) = delete;
  ActivityExecutor& operator=(const ActivityExecutor&) = delete;

  virtual Mechanism mechanism() const = 0;

  /// True only for the concrete executors of executor_impl.hpp: a promise
  /// that this object IS the concrete class for mechanism(), so
  /// execute_batch may static_cast and take the templated fast path.
  /// Decorating executors (check::) must leave this false — their whole
  /// point is interposing on the type-erased execute() seam.
  virtual bool devirtualized() const { return false; }

  /// Applies op(access, i) for i in [0, count) under the mechanism.
  /// Transactional executors stage the batch: the call must then be the
  /// last action of the current Worker::next(). Non-transactional
  /// executors apply synchronously, and `done` (if any) fires before
  /// execute returns. `op_id` names the operator body for analysis layers
  /// (concrete executors ignore it; execution never depends on it).
  virtual void execute(htm::ThreadCtx& ctx, std::uint64_t count,
                       const ItemOp& op, BatchDone done = {},
                       OperatorId op_id = OperatorId::kUnknown) = 0;

  /// The executor's preferred operators-per-batch for work claiming (M
  /// for HTM — live from the adaptive controller when one is attached;
  /// the configured batch otherwise). Virtual (with set_batch and the
  /// adaptive hooks) so decorating executors can forward to the inner one.
  virtual int preferred_batch() const { return batch_; }
  virtual void set_batch(int m) { batch_ = m; }

  /// Online M selection (§7): HtmCoarsened claims the controller's batch
  /// size and feeds activity outcomes back; other mechanisms ignore it.
  virtual void set_adaptive(AdaptiveBatch* adaptive) { adaptive_ = adaptive; }
  virtual AdaptiveBatch* adaptive() const { return adaptive_; }

  /// Outcome telemetry tap (HtmCoarsened fires it per completed activity,
  /// after the adaptive controller; other mechanisms never do). Virtual so
  /// decorating executors can forward to the inner one.
  virtual void set_outcome_hook(OutcomeHook hook) {
    outcome_hook_ = std::move(hook);
  }

  /// Checkpoint support (src/recovery/): serializes the executor's durable
  /// host-side control state — batch size, the attached adaptive
  /// controller, and mechanism-specific fields (e.g. the serial lock's
  /// virtual-time release point, the auto dispatcher's ladder rungs).
  /// Heap-resident tables (lock stripes, orecs) restore with the heap
  /// image and are not re-serialized here. Overrides must call the base
  /// first and append in the same order on both sides.
  virtual void save_state(util::BlobWriter& w) const;
  virtual void restore_state(util::BlobReader& r);

 protected:
  explicit ActivityExecutor(int batch) : batch_(batch) {}

  int batch_;
  AdaptiveBatch* adaptive_ = nullptr;
  OutcomeHook outcome_hook_;
};

/// Wraps a freshly built executor in an analysis layer. Implemented by
/// check::Checker (src/check/); declared here so the construction seam
/// (make_executor and every Options struct that feeds it) can carry a
/// checker without the core layer depending on the check subsystem.
class ExecutorDecorator {
 public:
  virtual ~ExecutorDecorator() = default;
  virtual std::unique_ptr<ActivityExecutor> wrap(
      std::unique_ptr<ActivityExecutor> inner) = 0;
};

struct AutoPolicy;  // core/auto_executor.hpp (plain data filled by analysis::)

struct ExecutorOptions {
  int batch = 16;  ///< M: operators per coarse batch
  /// kFineLocks: entries in the striped per-element lock table (rounded
  /// up to a power of two; allocated on the machine's SimHeap).
  std::uint32_t lock_stripes = 1u << 13;
  /// Optional dynamic-analysis wrapper (see src/check/); nullptr = none.
  ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto: when set, make_executor ignores the mechanism
  /// argument and builds an AutoExecutor routing each batch per the
  /// policy's recommendation table. The decorator then wraps the *inner*
  /// fixed executors (one per reachable rung), not the auto shell. The
  /// policy must outlive the executor.
  const AutoPolicy* auto_policy = nullptr;
};

/// Builds the executor for `mechanism` on `machine` (lock tables live on
/// the machine's heap; the kStm engine is owned by the executor), or the
/// auto-dispatching executor when options.auto_policy is set.
std::unique_ptr<ActivityExecutor> make_executor(
    Mechanism mechanism, htm::DesMachine& machine,
    const ExecutorOptions& options = {});

}  // namespace aam::core
