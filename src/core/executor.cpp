#include "core/executor.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/auto_executor.hpp"
#include "core/executor_impl.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace aam::core {

namespace {

constexpr Mechanism kAllMechanisms[] = {
    Mechanism::kHtmCoarsened, Mechanism::kAtomicOps, Mechanism::kFineLocks,
    Mechanism::kSerialLock, Mechanism::kStm,
};

constexpr OperatorId kAllOperatorIds[] = {
    OperatorId::kBfsVisit,  OperatorId::kPagerankPush, OperatorId::kSsspRelax,
    OperatorId::kUfRoot,    OperatorId::kUfUnion,      OperatorId::kColorAssign,
    OperatorId::kStVisit,
};

}  // namespace

const char* to_string(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kHtmCoarsened: return "htm";
    case Mechanism::kAtomicOps: return "atomics";
    case Mechanism::kFineLocks: return "fine-locks";
    case Mechanism::kSerialLock: return "serial-lock";
    case Mechanism::kStm: return "stm";
  }
  return "?";
}

std::optional<Mechanism> parse_mechanism(std::string_view name) {
  for (Mechanism m : kAllMechanisms) {
    if (name == to_string(m)) return m;
  }
  return std::nullopt;
}

std::span<const Mechanism> all_mechanisms() { return kAllMechanisms; }

const char* to_string(OperatorId op) {
  switch (op) {
    case OperatorId::kUnknown: return "?";
    case OperatorId::kBfsVisit: return "bfs_visit";
    case OperatorId::kPagerankPush: return "pagerank_push";
    case OperatorId::kSsspRelax: return "sssp_relax";
    case OperatorId::kUfRoot: return "uf_root";
    case OperatorId::kUfUnion: return "uf_union";
    case OperatorId::kColorAssign: return "color_assign";
    case OperatorId::kStVisit: return "st_visit";
  }
  return "?";
}

std::span<const OperatorId> all_operator_ids() { return kAllOperatorIds; }

std::string mechanism_names() {
  std::string names;
  for (Mechanism m : kAllMechanisms) {
    if (!names.empty()) names += ", ";
    names += to_string(m);
  }
  return names;
}

std::string mechanism_error(const std::string& flag, const std::string& value) {
  return "--" + flag + "=" + value + ": unknown mechanism; valid names: " +
         mechanism_names();
}

Mechanism mechanism_flag(util::Cli& cli, const std::string& flag,
                         Mechanism def) {
  const std::string value = cli.get_string(flag, to_string(def));
  const auto parsed = parse_mechanism(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s\n", mechanism_error(flag, value).c_str());
    std::exit(2);
  }
  return *parsed;
}

std::optional<MechanismSelection> parse_mechanism_selection(
    std::string_view name) {
  if (name == "auto") return MechanismSelection{};
  if (const auto fixed = parse_mechanism(name); fixed.has_value()) {
    return MechanismSelection{.fixed = *fixed};
  }
  return std::nullopt;
}

std::string mechanism_selection_names() { return mechanism_names() + ", auto"; }

std::string mechanism_selection_error(const std::string& flag,
                                      const std::string& value) {
  return "--" + flag + "=" + value + ": unknown mechanism; valid names: " +
         mechanism_selection_names();
}

MechanismSelection mechanism_selection_flag(util::Cli& cli,
                                            const std::string& flag,
                                            const std::string& def) {
  const std::string value = cli.get_string(flag, def);
  const auto parsed = parse_mechanism_selection(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s\n",
                 mechanism_selection_error(flag, value).c_str());
    std::exit(2);
  }
  return *parsed;
}

void ActivityExecutor::save_state(util::BlobWriter& w) const {
  w.put<std::int32_t>(batch_);
  w.put<std::uint8_t>(adaptive_ != nullptr ? 1 : 0);
  if (adaptive_ != nullptr) adaptive_->save_state(w);
}

void ActivityExecutor::restore_state(util::BlobReader& r) {
  batch_ = r.get<std::int32_t>();
  const bool had_adaptive = r.get<std::uint8_t>() != 0;
  AAM_CHECK_MSG(had_adaptive == (adaptive_ != nullptr),
                "adaptive controller attachment changed since checkpoint");
  if (adaptive_ != nullptr) adaptive_->restore_state(r);
}

std::unique_ptr<ActivityExecutor> make_executor(Mechanism mechanism,
                                                htm::DesMachine& machine,
                                                const ExecutorOptions& options) {
  AAM_CHECK(options.batch >= 1);
  if (options.auto_policy != nullptr) {
    // The decorator is applied to the auto executor's inner rungs (so a
    // checker observes true mechanisms per batch); the shell stays bare.
    return std::make_unique<AutoExecutor>(machine, *options.auto_policy,
                                          options);
  }
  std::unique_ptr<ActivityExecutor> executor;
  switch (mechanism) {
    case Mechanism::kHtmCoarsened:
      executor = std::make_unique<HtmCoarsenedExecutor>(machine, options.batch);
      break;
    case Mechanism::kAtomicOps:
      executor = std::make_unique<AtomicOpsExecutor>(machine, options.batch);
      break;
    case Mechanism::kFineLocks:
      executor = std::make_unique<FineLocksExecutor>(machine, options.batch,
                                                     options.lock_stripes);
      break;
    case Mechanism::kSerialLock:
      executor = std::make_unique<SerialLockExecutor>(machine, options.batch);
      break;
    case Mechanism::kStm:
      executor = std::make_unique<StmExecutor>(machine, options.batch,
                                               options.lock_stripes);
      break;
  }
  AAM_CHECK_MSG(executor != nullptr, "unknown mechanism");
  if (options.decorator != nullptr) {
    executor = options.decorator->wrap(std::move(executor));
  }
  return executor;
}

}  // namespace aam::core
