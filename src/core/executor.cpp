#include "core/executor.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace aam::core {

namespace {

constexpr Mechanism kAllMechanisms[] = {
    Mechanism::kHtmCoarsened, Mechanism::kAtomicOps, Mechanism::kFineLocks,
    Mechanism::kSerialLock, Mechanism::kStm,
};

// --------------------------------------------------------------------------
// Access adapters.
// --------------------------------------------------------------------------

/// Transactional accesses through the DES HTM engine.
class TxnAccess final : public Access {
 public:
  TxnAccess(htm::Txn& tx, std::vector<std::uint64_t>* results)
      : Access(results), tx_(tx) {}

  std::uint32_t load(const std::uint32_t& ref) override { return tx_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return tx_.load(ref); }
  double load(const double& ref) override { return tx_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    tx_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    tx_.store(ref, value);
  }
  void store(double& ref, double value) override { tx_.store(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return tx_.fetch_add(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return tx_.fetch_add(ref, delta);
  }
  bool transactional() const override { return true; }

 private:
  // Inside a transaction CAS needs no hardware atomic: a load + store pair
  // is atomic by isolation (the §4.2 point that coarse transactions remove
  // fine-grained synchronization from the operator bodies).
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    if (tx_.load(ref) != expect) return false;
    tx_.store(ref, desired);
    return true;
  }

  htm::Txn& tx_;
};

/// Hardware atomics (CAS/ACC) per guarded update; plain loads/stores.
class AtomicAccess final : public Access {
 public:
  AtomicAccess(htm::ThreadCtx& ctx, std::vector<std::uint64_t>* results)
      : Access(results), ctx_(ctx) {}

  std::uint32_t load(const std::uint32_t& ref) override { return ctx_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return ctx_.load(ref); }
  double load(const double& ref) override { return ctx_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    ctx_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    ctx_.store(ref, value);
  }
  void store(double& ref, double value) override { ctx_.store(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return ctx_.cas(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return ctx_.cas(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return ctx_.cas(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return ctx_.fetch_add(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return ctx_.fetch_add(ref, delta);
  }
  bool transactional() const override { return false; }

 private:
  htm::ThreadCtx& ctx_;
};

/// Striped per-element spinlocks around every guarded update. Within one
/// DES dispatch no other thread runs, so a lock acquired and released in
/// the same next() never actually spins: its cost is the modelled CAS on
/// the lock word (plus line contention), exactly like the previous
/// hand-rolled fine-lock BFS path.
class FineLockAccess final : public Access {
 public:
  FineLockAccess(htm::ThreadCtx& ctx, const mem::SimHeap& heap,
                 std::span<std::uint32_t> locks,
                 std::vector<std::uint64_t>* results)
      : Access(results), ctx_(ctx), heap_(heap), locks_(locks) {}

  std::uint32_t load(const std::uint32_t& ref) override { return ctx_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return ctx_.load(ref); }
  double load(const double& ref) override { return ctx_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    store_impl(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    store_impl(ref, value);
  }
  void store(double& ref, double value) override { store_impl(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return fetch_add_impl(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return fetch_add_impl(ref, delta);
  }
  bool transactional() const override { return false; }

 private:
  std::uint32_t& lock_of(const void* p) {
    // Hash the heap offset, not the host address: host addresses change
    // run to run (ASLR) and would break bit-reproducibility.
    return locks_[util::mix64(heap_.offset_of(p) >> 2) & (locks_.size() - 1)];
  }
  void acquire(const void* p) {
    std::uint32_t& lock = lock_of(p);
    while (!ctx_.cas(lock, 0u, 1u)) {
    }
  }
  void release(const void* p) { ctx_.store(lock_of(p), 0u); }

  template <typename T>
  void store_impl(T& ref, T value) {
    acquire(&ref);
    ctx_.store(ref, value);
    release(&ref);
  }
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    acquire(&ref);
    const bool ok = ctx_.load(ref) == expect;
    if (ok) ctx_.store(ref, desired);
    release(&ref);
    return ok;
  }
  template <typename T>
  T fetch_add_impl(T& ref, T delta) {
    acquire(&ref);
    const T old = ctx_.load(ref);
    ctx_.store(ref, static_cast<T>(old + delta));
    release(&ref);
    return old;
  }

  htm::ThreadCtx& ctx_;
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> locks_;
};

/// Plain accesses: correct only under external mutual exclusion (the
/// serial-lock executor holds the global lock around the whole batch).
class PlainAccess final : public Access {
 public:
  PlainAccess(htm::ThreadCtx& ctx, std::vector<std::uint64_t>* results)
      : Access(results), ctx_(ctx) {}

  std::uint32_t load(const std::uint32_t& ref) override { return ctx_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return ctx_.load(ref); }
  double load(const double& ref) override { return ctx_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    ctx_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    ctx_.store(ref, value);
  }
  void store(double& ref, double value) override { ctx_.store(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return fetch_add_impl(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return fetch_add_impl(ref, delta);
  }
  bool transactional() const override { return false; }

 private:
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    const bool ok = ctx_.load(ref) == expect;
    if (ok) ctx_.store(ref, desired);
    return ok;
  }
  template <typename T>
  T fetch_add_impl(T& ref, T delta) {
    const T old = ctx_.load(ref);
    ctx_.store(ref, static_cast<T>(old + delta));
    return old;
  }

  htm::ThreadCtx& ctx_;
};

/// Forwards to StmAccess while counting loads and recording written
/// addresses for the cost model (the write set drives the commit-time
/// orec locking replayed against the DES machine).
class CountingStmAccess final : public Access {
 public:
  CountingStmAccess(htm::StmTxn& tx, std::vector<std::uint64_t>* results,
                    std::uint64_t& loads, std::vector<const void*>& writes)
      : Access(results), inner_(tx, results), loads_(loads), writes_(writes) {}

  std::uint32_t load(const std::uint32_t& ref) override {
    ++loads_;
    return inner_.load(ref);
  }
  std::uint64_t load(const std::uint64_t& ref) override {
    ++loads_;
    return inner_.load(ref);
  }
  double load(const double& ref) override {
    ++loads_;
    return inner_.load(ref);
  }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    writes_.push_back(&ref);
    inner_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    writes_.push_back(&ref);
    inner_.store(ref, value);
  }
  void store(double& ref, double value) override {
    writes_.push_back(&ref);
    inner_.store(ref, value);
  }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    ++loads_;
    writes_.push_back(&ref);
    return inner_.fetch_add(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    ++loads_;
    writes_.push_back(&ref);
    return inner_.fetch_add(ref, delta);
  }
  bool transactional() const override { return true; }

 private:
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    ++loads_;
    const bool ok = inner_.cas(ref, expect, desired);
    if (ok) writes_.push_back(&ref);
    return ok;
  }

  StmAccess inner_;
  std::uint64_t& loads_;
  std::vector<const void*>& writes_;
};

// --------------------------------------------------------------------------
// Executors.
// --------------------------------------------------------------------------

/// Per-thread emission staging shared by all executors.
class StagedExecutor : public ActivityExecutor {
 protected:
  StagedExecutor(htm::DesMachine& machine, int batch)
      : ActivityExecutor(batch),
        staging_(static_cast<std::size_t>(machine.num_threads())) {}

  std::vector<std::uint64_t>& staging(htm::ThreadCtx& ctx) {
    return staging_[ctx.thread_id()];
  }

 private:
  std::vector<std::vector<std::uint64_t>> staging_;
};

class HtmCoarsenedExecutor final : public StagedExecutor {
 public:
  HtmCoarsenedExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch) {}

  Mechanism mechanism() const override { return Mechanism::kHtmCoarsened; }

  int preferred_batch() const override {
    return adaptive_ ? adaptive_->batch() : batch_;
  }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {}) override {
    auto& stage = staging(ctx);
    if (count == 0) {
      stage.clear();
      if (done) done(ctx, stage);
      return;
    }
    // One coarse activity: `count` operators in a single transaction
    // (§4.2, Listing 8). The body may re-execute on retries, so emissions
    // restage from scratch each attempt; `done` sees the committed set.
    ctx.stage_transaction(
        [this, &stage, op, count](htm::Txn& tx) {
          stage.clear();
          TxnAccess access(tx, &stage);
          for (std::uint64_t i = 0; i < count; ++i) op(access, i);
        },
        [this, &stage, done = std::move(done)](htm::ThreadCtx& done_ctx,
                                               const htm::TxnOutcome& outcome) {
          if (adaptive_ != nullptr) adaptive_->record(outcome);
          if (done) done(done_ctx, stage);
          stage.clear();
        });
  }
};

class AtomicOpsExecutor final : public StagedExecutor {
 public:
  AtomicOpsExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch) {}

  Mechanism mechanism() const override { return Mechanism::kAtomicOps; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {}) override {
    auto& stage = staging(ctx);
    stage.clear();
    AtomicAccess access(ctx, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    if (done) done(ctx, stage);
    stage.clear();
  }
};

class FineLocksExecutor final : public StagedExecutor {
 public:
  FineLocksExecutor(htm::DesMachine& machine, int batch,
                    std::uint32_t stripes)
      : StagedExecutor(machine, batch),
        heap_(machine.heap()),
        locks_(machine.heap().alloc<std::uint32_t>(std::bit_ceil(stripes),
                                                  "fine-locks.stripes")) {
    for (auto& lock : locks_) lock = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kFineLocks; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {}) override {
    auto& stage = staging(ctx);
    stage.clear();
    FineLockAccess access(ctx, heap_, locks_, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    if (done) done(ctx, stage);
    stage.clear();
  }

 private:
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> locks_;
};

class SerialLockExecutor final : public StagedExecutor {
 public:
  SerialLockExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch),
        lock_(machine.heap().alloc<std::uint32_t>(1, "serial-lock.word")) {
    lock_[0] = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kSerialLock; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {}) override {
    // True virtual-time mutual exclusion: a thread arriving while the lock
    // is "held" (free_at_ in its future) first waits it out, then runs the
    // whole batch under the lock. Each DES dispatch is sequential, so the
    // CAS always succeeds in program terms; waiting + the hot-line CAS
    // model the §4.1 coarse-lock serialization cost.
    if (free_at_ > ctx.now()) ctx.compute(free_at_ - ctx.now());
    while (!ctx.cas(lock_[0], 0u, 1u)) {
    }
    auto& stage = staging(ctx);
    stage.clear();
    PlainAccess access(ctx, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    ctx.store(lock_[0], 0u);
    free_at_ = ctx.now();
    if (done) done(ctx, stage);
    stage.clear();
  }

 private:
  std::span<std::uint32_t> lock_;
  double free_at_ = 0;
};

class StmExecutor final : public StagedExecutor {
 public:
  StmExecutor(htm::DesMachine& machine, int batch, std::uint32_t stripes)
      : StagedExecutor(machine, batch),
        costs_(machine.config().atomics),
        heap_(machine.heap()),
        orecs_(machine.heap().alloc<std::uint32_t>(std::bit_ceil(stripes),
                                                  "stm.orecs")),
        clock_(machine.heap().alloc<std::uint32_t>(1, "stm.clock")),
        writes_(static_cast<std::size_t>(machine.num_threads())) {
    for (auto& orec : orecs_) orec = 0;
    clock_[0] = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kStm; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {}) override {
    auto& stage = staging(ctx);
    auto& writes = writes_[ctx.thread_id()];
    std::uint64_t loads = 0;
    // The software transaction runs for real against heap memory; within
    // one DES dispatch it is uncontended and commits first try. Its cost
    // follows a first-order TL2 model:
    //  * read: orec load + value load, revalidated at commit (3 loads),
    //    plus per-access bookkeeping (hashing, set lookups, version
    //    compares) — charged as a multiple of the cached load cost, the
    //    model's proxy for core speed;
    //  * write: buffered (read-set-style bookkeeping during the body),
    //    then at commit the orec lock CAS, write-back store, and orec
    //    release store. The lock/release pair is replayed below as REAL
    //    modeled atomics on a striped orec table, so it queues at the
    //    machine's atomic unit exactly like the plain-atomics executor
    //    does (on BGQ that is the machine-wide L2 gap — the serialization
    //    a compute-only charge would silently bypass);
    //  * a global version-clock load at begin and CAS at commit.
    engine_.atomically([&](htm::StmTxn& tx) {
      stage.clear();
      writes.clear();
      loads = 0;
      CountingStmAccess access(tx, &stage, loads, writes);
      for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    });
    (void)ctx.load(clock_[0]);  // begin: sample the global version clock
    const double bookkeeping_ns = 4.0 * costs_.load_ns;
    const double access_ns =
        static_cast<double>(loads) * (3.0 * costs_.load_ns + bookkeeping_ns) +
        static_cast<double>(writes.size()) *
            (costs_.load_ns + bookkeeping_ns);
    ctx.compute(access_ns);
    for (const void* addr : writes) {
      std::uint32_t& orec = orec_of(addr);
      while (!ctx.cas(orec, 0u, 1u)) {
      }
      ctx.compute(costs_.store_ns);  // write back the buffered value
      ctx.store(orec, 0u);
    }
    if (!writes.empty()) {
      const std::uint32_t version = ctx.load(clock_[0]);
      ctx.cas(clock_[0], version, version + 1);
    }
    if (done) done(ctx, stage);
    stage.clear();
  }

 private:
  std::uint32_t& orec_of(const void* p) {
    // Heap offset, not host address: deterministic across runs (no ASLR).
    return orecs_[util::mix64(heap_.offset_of(p) >> 2) & (orecs_.size() - 1)];
  }

  const model::AtomicCosts& costs_;
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> orecs_;
  std::span<std::uint32_t> clock_;
  std::vector<std::vector<const void*>> writes_;
  htm::StmEngine engine_;
};

}  // namespace

const char* to_string(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kHtmCoarsened: return "htm";
    case Mechanism::kAtomicOps: return "atomics";
    case Mechanism::kFineLocks: return "fine-locks";
    case Mechanism::kSerialLock: return "serial-lock";
    case Mechanism::kStm: return "stm";
  }
  return "?";
}

std::optional<Mechanism> parse_mechanism(std::string_view name) {
  for (Mechanism m : kAllMechanisms) {
    if (name == to_string(m)) return m;
  }
  return std::nullopt;
}

std::span<const Mechanism> all_mechanisms() { return kAllMechanisms; }

std::string mechanism_names() {
  std::string names;
  for (Mechanism m : kAllMechanisms) {
    if (!names.empty()) names += ", ";
    names += to_string(m);
  }
  return names;
}

std::string mechanism_error(const std::string& flag, const std::string& value) {
  return "--" + flag + "=" + value + ": unknown mechanism; valid names: " +
         mechanism_names();
}

Mechanism mechanism_flag(util::Cli& cli, const std::string& flag,
                         Mechanism def) {
  const std::string value = cli.get_string(flag, to_string(def));
  const auto parsed = parse_mechanism(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s\n", mechanism_error(flag, value).c_str());
    std::exit(2);
  }
  return *parsed;
}

std::unique_ptr<ActivityExecutor> make_executor(Mechanism mechanism,
                                                htm::DesMachine& machine,
                                                const ExecutorOptions& options) {
  AAM_CHECK(options.batch >= 1);
  std::unique_ptr<ActivityExecutor> executor;
  switch (mechanism) {
    case Mechanism::kHtmCoarsened:
      executor = std::make_unique<HtmCoarsenedExecutor>(machine, options.batch);
      break;
    case Mechanism::kAtomicOps:
      executor = std::make_unique<AtomicOpsExecutor>(machine, options.batch);
      break;
    case Mechanism::kFineLocks:
      executor = std::make_unique<FineLocksExecutor>(machine, options.batch,
                                                     options.lock_stripes);
      break;
    case Mechanism::kSerialLock:
      executor = std::make_unique<SerialLockExecutor>(machine, options.batch);
      break;
    case Mechanism::kStm:
      executor = std::make_unique<StmExecutor>(machine, options.batch,
                                               options.lock_stripes);
      break;
  }
  AAM_CHECK_MSG(executor != nullptr, "unknown mechanism");
  if (options.decorator != nullptr) {
    executor = options.decorator->wrap(std::move(executor));
  }
  return executor;
}

}  // namespace aam::core
