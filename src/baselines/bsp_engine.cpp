#include "baselines/bsp_engine.hpp"

#include <memory>

#include "core/worklist.hpp"
#include "graph/gstats.hpp"
#include "util/check.hpp"

namespace aam::baselines {

namespace {

using graph::Vertex;

struct BspState {
  const graph::Graph* graph = nullptr;
  BspEngine::Options options;
  BspEngine::ComputeFn compute;

  int superstep = 0;
  std::vector<std::vector<BspEngine::Message>> inbox;   // per vertex
  std::vector<std::vector<BspEngine::Message>> next_inbox;
  std::vector<bool> halted;
  core::ChunkCursor* cursor = nullptr;
  std::uint64_t messages_sent = 0;
};

class BspWorker : public htm::Worker {
 public:
  explicit BspWorker(BspState& state) : state_(state) {}

  std::vector<std::pair<Vertex, BspEngine::Message>>& outbox() {
    return outbox_;
  }

  bool next(htm::ThreadCtx& ctx) override {
    std::uint64_t begin = 0, end = 0;
    if (!state_.cursor->claim(ctx, state_.graph->num_vertices(), 128, begin,
                              end)) {
      return false;
    }
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto v = static_cast<Vertex>(i);
      auto& msgs = state_.inbox[v];
      const bool active =
          !state_.halted[v] || !msgs.empty() || state_.superstep == 0;
      if (!active) continue;

      // Framework dispatch + message deserialization costs.
      ctx.compute(state_.options.per_vertex_ns +
                  state_.options.per_message_ns *
                      static_cast<double>(msgs.size()));

      BspEngine::VertexContext vctx(v, state_.superstep, msgs,
                                    state_.graph->neighbors(v), &outbox_);
      const std::size_t sent_before = outbox_.size();
      state_.compute(vctx);
      state_.halted[v] = vctx.halted();
      // Message serialization cost at the sender.
      ctx.compute(state_.options.per_message_ns *
                  static_cast<double>(outbox_.size() - sent_before));
      msgs.clear();
    }
    return true;
  }

 private:
  BspState& state_;
  std::vector<std::pair<Vertex, BspEngine::Message>> outbox_;
};

}  // namespace

BspEngine::Result BspEngine::run(htm::DesMachine& machine,
                                 const graph::Graph& graph,
                                 ComputeFn compute) {
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);

  BspState state;
  state.graph = &graph;
  state.options = options_;
  state.compute = std::move(compute);
  state.inbox.resize(n);
  state.next_inbox.resize(n);
  state.halted.assign(n, false);
  core::ChunkCursor cursor(machine.heap());
  state.cursor = &cursor;

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  std::vector<std::unique_ptr<BspWorker>> workers;
  for (int t = 0; t < machine.num_threads(); ++t) {
    workers.push_back(std::make_unique<BspWorker>(state));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  Result result;
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    // Superstep barrier: route all outboxes into next-superstep inboxes.
    std::uint64_t delivered = 0;
    for (auto& w : workers) {
      for (const auto& [target, msg] : w->outbox()) {
        state.next_inbox[target].push_back(msg);
        ++delivered;
      }
      w->outbox().clear();
    }
    state.messages_sent += delivered;
    ++state.superstep;
    ++result.supersteps;

    bool any_active = delivered > 0;
    if (!any_active) {
      for (Vertex v = 0; v < n; ++v) {
        if (!state.halted[v]) {
          any_active = true;
          break;
        }
      }
    }
    if (!any_active || state.superstep >= options_.max_supersteps) {
      return false;
    }
    std::swap(state.inbox, state.next_inbox);
    cursor.reset_direct();
    m.barrier_release(options_.superstep_overhead_ns);
    return true;
  });
  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.messages_sent = state.messages_sent;
  result.total_time_ns = machine.makespan();
  return result;
}

std::vector<std::uint32_t> bsp_bfs(htm::DesMachine& machine,
                                   const graph::Graph& graph,
                                   graph::Vertex root,
                                   const BspEngine::Options& options,
                                   BspEngine::Result* result) {
  std::vector<std::uint32_t> level(graph.num_vertices(),
                                   graph::kInvalidLevel);
  BspEngine engine(options);
  const BspEngine::Result r = engine.run(
      machine, graph, [&](BspEngine::VertexContext& ctx) {
        const Vertex v = ctx.vertex();
        if (ctx.superstep() == 0) {
          if (v == root) {
            level[v] = 0;
            ctx.send_to_neighbors(1);
          }
          ctx.vote_to_halt();
          return;
        }
        if (level[v] == graph::kInvalidLevel && !ctx.messages().empty()) {
          level[v] = static_cast<std::uint32_t>(ctx.messages()[0]);
          ctx.send_to_neighbors(level[v] + 1);
        }
        ctx.vote_to_halt();
      });
  if (result != nullptr) *result = r;
  return level;
}

}  // namespace aam::baselines
