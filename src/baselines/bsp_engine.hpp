#pragma once

// A Pregel/HAMA-like vertex-centric BSP engine (§6.1.2 comparison).
//
// Computation proceeds in global supersteps. In each superstep every
// active vertex runs the user compute function, reading the messages sent
// to it in the previous superstep and sending messages for the next one.
// A vertex votes to halt and is reactivated by incoming messages; the run
// ends when all vertices halted and no messages are in flight.
//
// The cost model charges what the paper blames for HAMA's performance
// (§6.1.2): a large per-superstep synchronization overhead (the Hadoop
// MapReduce barrier) — which multiplies with graph diameter, devastating
// road networks — plus per-message serialization and per-vertex dispatch
// costs. The engine itself is a faithful, reusable BSP implementation; the
// HAMA-calibrated defaults make it the Table 1 / Fig 7 comparator.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::baselines {

class BspEngine {
 public:
  struct Options {
    /// Per-superstep global synchronization cost. HAMA runs each superstep
    /// as a Hadoop-style job; the default models tens of milliseconds.
    double superstep_overhead_ns = 2.0e7;
    double per_message_ns = 1800.0;  ///< serialize + route + deserialize
    double per_vertex_ns = 250.0;    ///< framework dispatch per compute()
    int max_supersteps = 100000;
  };

  using Message = std::uint64_t;

  /// Context handed to the user compute function for one vertex.
  class VertexContext {
   public:
    VertexContext(graph::Vertex vertex, int superstep,
                  std::span<const Message> messages,
                  std::span<const graph::Vertex> neighbors,
                  std::vector<std::pair<graph::Vertex, Message>>* outbox)
        : vertex_(vertex), superstep_(superstep), messages_(messages),
          neighbors_(neighbors), outbox_(outbox) {}

    graph::Vertex vertex() const { return vertex_; }
    int superstep() const { return superstep_; }
    std::span<const Message> messages() const { return messages_; }
    std::span<const graph::Vertex> neighbors() const { return neighbors_; }

    /// Queue a message for `target`, delivered next superstep.
    void send(graph::Vertex target, Message msg) {
      outbox_->emplace_back(target, msg);
    }
    void send_to_neighbors(Message msg) {
      for (graph::Vertex w : neighbors_) send(w, msg);
    }
    /// Halt until a message arrives.
    void vote_to_halt() { halted_ = true; }
    bool halted() const { return halted_; }

   private:
    graph::Vertex vertex_ = 0;
    int superstep_ = 0;
    std::span<const Message> messages_;
    std::span<const graph::Vertex> neighbors_;
    std::vector<std::pair<graph::Vertex, Message>>* outbox_ = nullptr;
    bool halted_ = false;
  };

  using ComputeFn = std::function<void(VertexContext&)>;

  struct Result {
    int supersteps = 0;
    std::uint64_t messages_sent = 0;
    double total_time_ns = 0;
  };

  explicit BspEngine(Options options) : options_(options) {}

  /// Runs the vertex program on all machine threads until convergence.
  Result run(htm::DesMachine& machine, const graph::Graph& graph,
             ComputeFn compute);

 private:
  Options options_;
};

/// BFS as a BSP vertex program; returns the level array (host-side) and
/// fills `result` with engine statistics. The standard Pregel example.
std::vector<std::uint32_t> bsp_bfs(htm::DesMachine& machine,
                                   const graph::Graph& graph,
                                   graph::Vertex root,
                                   const BspEngine::Options& options,
                                   BspEngine::Result* result);

}  // namespace aam::baselines
