#include "baselines/named.hpp"

#include <deque>

#include "graph/gstats.hpp"

namespace aam::baselines {

namespace {

using graph::Vertex;

// The whole traversal runs on logical thread 0 with modelled costs.
class SequentialBfsWorker : public htm::Worker {
 public:
  SequentialBfsWorker(const graph::Graph& graph, Vertex root,
                      double per_vertex_ns,
                      std::vector<std::uint32_t>& level)
      : graph_(graph), per_vertex_ns_(per_vertex_ns), level_(level) {
    level_.assign(graph.num_vertices(), graph::kInvalidLevel);
    level_[root] = 0;
    queue_.push_back(root);
  }

  bool next(htm::ThreadCtx& ctx) override {
    // One vertex expansion per work unit.
    if (queue_.empty()) return false;
    const Vertex u = queue_.front();
    queue_.pop_front();
    ctx.compute(per_vertex_ns_);
    for (Vertex w : graph_.neighbors(u)) {
      ctx.compute(ctx.machine().config().atomics.load_ns);
      if (level_[w] == graph::kInvalidLevel) {
        level_[w] = level_[u] + 1;
        ctx.compute(ctx.machine().config().atomics.store_ns);
        queue_.push_back(w);
      }
    }
    return true;
  }

 private:
  const graph::Graph& graph_;
  double per_vertex_ns_;
  std::vector<std::uint32_t>& level_;
  std::deque<Vertex> queue_;
};

}  // namespace

SnapBfsResult snap_bfs(htm::DesMachine& machine, const graph::Graph& graph,
                       graph::Vertex root, double per_vertex_overhead_ns) {
  machine.reset_clocks(0.0, /*clear_stats=*/true);
  SnapBfsResult result;
  SequentialBfsWorker worker(graph, root, per_vertex_overhead_ns,
                             result.level);
  machine.set_worker(0, &worker);
  machine.run();
  machine.set_worker(0, nullptr);
  result.total_time_ns = machine.makespan();
  return result;
}

}  // namespace aam::baselines
