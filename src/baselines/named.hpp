#pragma once

// Named baseline entry points matching the comparison systems of §6.
//
// These are thin, documented wrappers over the shared BFS driver
// (algorithms/bfs.hpp) plus the SNAP-like sequential runner, so benchmark
// code reads like the paper's tables:
//
//   graph500_bfs  — the OpenMP Graph500 reference: atomics (CAS) with the
//                   visited pre-check optimization (§6.1 baseline).
//   galois_bfs    — the Galois-like engine: same worklist structure with
//                   per-vertex fine locks (§6.1.2; the paper modified
//                   Galois BFS to build a full BFS tree).
//   snap_bfs      — the SNAP-like network-analysis library: sequential
//                   traversal with per-vertex framework overhead ("does
//                   not efficiently use threading", §6.1.2).
//
// The HAMA-like comparator lives in bsp_engine.hpp.

#include <string_view>

#include "algorithms/bfs.hpp"
#include "core/executor.hpp"
#include "util/check.hpp"

namespace aam::baselines {

/// BFS under a mechanism picked by canonical name from the shared
/// registry (core::parse_mechanism): "htm", "atomics", "fine-locks",
/// "serial-lock", "stm". The named baselines below delegate here.
inline algorithms::BfsResult mechanism_bfs(
    htm::DesMachine& machine, const graph::Graph& graph, graph::Vertex root,
    std::string_view mechanism_name, int batch = 1,
    core::ExecutorDecorator* decorator = nullptr) {
  const auto mechanism = core::parse_mechanism(mechanism_name);
  AAM_CHECK_MSG(mechanism.has_value(), "unknown mechanism name");
  algorithms::BfsOptions options;
  options.root = root;
  options.mechanism = *mechanism;
  options.batch = batch;
  options.decorator = decorator;
  return algorithms::run_bfs(machine, graph, options);
}

/// Graph500 reference BFS (atomic CAS + pre-check, one vertex per op).
inline algorithms::BfsResult graph500_bfs(
    htm::DesMachine& machine, const graph::Graph& graph, graph::Vertex root,
    core::ExecutorDecorator* decorator = nullptr) {
  return mechanism_bfs(machine, graph, root, "atomics", 1, decorator);
}

/// Galois-like BFS (fine per-vertex locks).
inline algorithms::BfsResult galois_bfs(
    htm::DesMachine& machine, const graph::Graph& graph, graph::Vertex root,
    core::ExecutorDecorator* decorator = nullptr) {
  return mechanism_bfs(machine, graph, root, "fine-locks", 1, decorator);
}

struct SnapBfsResult {
  std::vector<std::uint32_t> level;
  double total_time_ns = 0;
};

/// SNAP-like sequential BFS: single logical thread, per-vertex dispatch
/// overhead of a generic analysis library.
SnapBfsResult snap_bfs(htm::DesMachine& machine, const graph::Graph& graph,
                       graph::Vertex root,
                       double per_vertex_overhead_ns = 90.0);

}  // namespace aam::baselines
