#pragma once

// Lightweight runtime checks used across the library.
//
// AAM_CHECK is always on (it guards invariants whose violation would make
// results meaningless, e.g. unregistered simulated memory). AAM_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.

#include <cstdio>
#include <cstdlib>

namespace aam::util {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "AAM_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace aam::util

#define AAM_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) ::aam::util::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define AAM_CHECK_MSG(cond, msg)                                 \
  do {                                                           \
    if (!(cond)) ::aam::util::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define AAM_DCHECK(cond) ((void)0)
#else
#define AAM_DCHECK(cond) AAM_CHECK(cond)
#endif
