#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace aam::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  AAM_CHECK(!samples_.empty());
  AAM_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  AAM_CHECK(xs.size() == ys.size());
  AAM_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  AAM_CHECK_MSG(denom != 0.0, "degenerate x values in linear fit");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.eval(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double crossover(const LinearFit& a, const LinearFit& b) {
  // a wins where a.eval(x) < b.eval(x). Solve equality.
  const double dslope = b.slope - a.slope;
  const double dint = a.intercept - b.intercept;
  if (dslope <= 0.0) {
    // a never gains on b with growing x; a wins everywhere iff cheaper at 0.
    return dint < 0.0 ? 0.0 : -1.0;
  }
  const double x = dint / dslope;
  return x < 0.0 ? 0.0 : x;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  AAM_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++under_;
  } else if (x >= hi_) {
    ++over_;
  } else {
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace aam::util
