#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace aam::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "aam";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Cli::get_string(const std::string& name, const std::string& def) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& name, double def) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 0));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string Cli::get_choice(const std::string& name, const std::string& def,
                            const std::vector<std::string>& allowed) {
  const std::string value = get_string(name, def);
  for (const auto& choice : allowed) {
    if (value == choice) return value;
  }
  std::fprintf(stderr, "invalid --%s=%s; valid choices:", name.c_str(),
               value.c_str());
  for (const auto& choice : allowed) std::fprintf(stderr, " %s", choice.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

void Cli::check_unknown() const {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    if (!consumed_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s=%s\n", name.c_str(), value.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace aam::util
