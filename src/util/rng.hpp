#pragma once

// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (graph generators, abort
// injection, backoff jitter, workload shuffling) draws from an explicitly
// seeded Rng so that simulations are bit-reproducible across runs and
// machines. The generator is xoshiro256**, seeded via splitmix64.

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace aam::util {

/// splitmix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hashing ids into streams.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    AAM_DCHECK(bound > 0);
    // Debiased multiply-shift; the rejection loop is effectively never taken
    // for the bounds used in this library.
    while (true) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    AAM_DCHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

  /// Fork an independent stream keyed by `key` (e.g. a thread id); the
  /// child stream is decorrelated from the parent and from other keys.
  constexpr Rng fork(std::uint64_t key) const {
    return Rng(mix64(state_[0] ^ mix64(key ^ 0x5bf03635d1f2b0e9ULL)));
  }

  /// Checkpoint support: the stream position is the four state words.
  /// Restoring them replays the exact draw sequence from that point.
  constexpr void save_state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  constexpr void restore_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace aam::util
