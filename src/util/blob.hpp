#pragma once

// Flat binary serialization for checkpoint snapshots (src/recovery/).
//
// BlobWriter appends trivially-copyable values and length-prefixed
// vectors/strings to a byte buffer; BlobReader consumes them in the same
// order. The format is positional (no tags): writer and reader are always
// the same code revision — snapshots live only inside one process run —
// so self-description would buy nothing. What the format *does* guard is
// truncation: every read checks the remaining length and aborts loudly on
// a short buffer, so a torn snapshot can never be half-applied.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace aam::util {

class BlobWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "blobs hold trivially-copyable data only");
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  void put_bytes(const void* data, std::size_t len) {
    put<std::uint64_t>(len);
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  void put_string(const std::string& s) { put_bytes(s.data(), s.size()); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class BlobReader {
 public:
  BlobReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit BlobReader(const std::vector<std::uint8_t>& bytes)
      : BlobReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    AAM_CHECK_MSG(pos_ + sizeof(T) <= len_, "truncated snapshot blob");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = get<std::uint64_t>();
    AAM_CHECK_MSG(pos_ + n * sizeof(T) <= len_, "truncated snapshot blob");
    std::vector<T> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Copies a length-prefixed byte run into `out` (must hold `expect`
  /// bytes); aborts if the stored length differs from `expect`.
  void get_bytes_into(void* out, std::size_t expect) {
    const std::uint64_t n = get<std::uint64_t>();
    AAM_CHECK_MSG(n == expect, "snapshot byte-run length mismatch");
    AAM_CHECK_MSG(pos_ + n <= len_, "truncated snapshot blob");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::string get_string() {
    const std::uint64_t n = get<std::uint64_t>();
    AAM_CHECK_MSG(pos_ + n <= len_, "truncated snapshot blob");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == len_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace aam::util
