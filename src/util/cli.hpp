#pragma once

// Minimal command-line flag parsing for the bench and example binaries.
//
// Accepted forms: --name=value, --name value, --flag (boolean true).
// Unknown flags abort with a message listing what was seen, so typos in
// experiment scripts fail loudly instead of silently running defaults.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace aam::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Typed getters; the first call for a name registers it as known.
  std::string get_string(const std::string& name, const std::string& def);
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def);
  /// Comma-separated integer list, e.g. --sizes=1,2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         const std::vector<std::int64_t>& def);
  /// String restricted to `allowed`; aborts listing the valid choices if
  /// the provided value is not one of them.
  std::string get_choice(const std::string& name, const std::string& def,
                         const std::vector<std::string>& allowed);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Call after all getters: aborts if any provided flag was never consumed.
  void check_unknown() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace aam::util
