#pragma once

// Summary statistics used by benchmark harnesses and the performance model.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aam::util {

/// Streaming mean / variance / extrema (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples; supports exact percentiles. Used where the sample
/// count is modest (per-benchmark repetitions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double median() const { return percentile(50.0); }
  /// Exact percentile with linear interpolation, p in [0,100].
  double percentile(double p) const;
  double min() const;
  double max() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Ordinary least squares fit of y = slope*x + intercept.
/// This is the §5.3 performance-model fit: t(N) = A·N + B.
struct LinearFit {
  double slope = 0.0;       ///< A (per-element cost)
  double intercept = 0.0;   ///< B (fixed overhead)
  double r2 = 0.0;          ///< coefficient of determination

  double eval(double x) const { return slope * x + intercept; }
};

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Crossover point between two linear cost models: smallest x >= 0 where
/// `a` becomes cheaper than `b`; returns a negative value if `a` never wins.
double crossover(const LinearFit& a, const LinearFit& b);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus under/over.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t underflow() const { return under_; }
  std::uint64_t overflow() const { return over_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0, over_ = 0, total_ = 0;
};

}  // namespace aam::util
