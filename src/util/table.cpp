#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace aam::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AAM_CHECK(!headers_.empty());
}

Table& Table::row() {
  AAM_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                "previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  AAM_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  AAM_CHECK_MSG(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "| " : " | ");
      out << v << std::string(widths[c] - v.size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
  std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  AAM_CHECK_MSG(out.good(), "cannot open CSV output file");
  out << to_csv();
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_time_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace aam::util
