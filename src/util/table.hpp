#pragma once

// Console table + CSV emission for benchmark harnesses.
//
// Every bench binary prints an aligned human-readable table (the rows of the
// paper figure/table it reproduces) and can optionally mirror the same rows
// into a CSV file for plotting.

#include <string>
#include <vector>

namespace aam::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned console table.
  std::string to_string() const;
  /// Render as CSV (headers + rows).
  std::string to_csv() const;
  /// Print to stdout with an optional caption line.
  void print(const std::string& caption = "") const;
  /// Write CSV to `path`; creates/truncates the file.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

/// Human-friendly time formatting: picks ns/us/ms/s based on magnitude.
std::string format_time_ns(double ns);

/// Formats with SI-style thousands grouping: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t value);

}  // namespace aam::util
