#pragma once

// Virtual time for the discrete-event simulation.
//
// All simulated durations and timestamps are nanoseconds held in a double.
// Doubles give deterministic arithmetic (IEEE-754, no platform variance for
// the operations we use) and enough precision: at nanosecond granularity a
// double is exact up to ~2^53 ns (~104 days of simulated time).

namespace aam::sim {

using Time = double;  ///< nanoseconds of virtual time

inline constexpr Time kNs = 1.0;
inline constexpr Time kUs = 1e3;
inline constexpr Time kMs = 1e6;
inline constexpr Time kSec = 1e9;

}  // namespace aam::sim
