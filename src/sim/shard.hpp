#pragma once

// Shard layer of the parallel DES backend.
//
// A *shard* is one self-contained slice of simulated work — an entire
// DesMachine (or Cluster) with its own SimHeap, event queue, and RNG
// streams — that the host can execute on a worker thread of its own. The
// layer has three pieces:
//
//  * Shard identity: a thread-local ShardId installed by ShardGuard while
//    a shard's job runs. Engine-side structures (EventQueue) can bind to
//    the shard that owns them and reject accesses from foreign shards, so
//    a cross-shard mutation bug fails deterministically instead of racing.
//
//  * Per-shard seed derivation: shard_seed() folds the shard index into
//    the master seed with the same mix64 stream-forking construction used
//    by util::Rng::fork, so every shard (and the fault injector inside it)
//    draws from a decorrelated stream that depends only on (seed, shard) —
//    never on which host worker ran it or in what order.
//
//  * Conservative lookahead: HorizonGate tracks per-shard committed
//    clocks and in-flight cross-shard messages over channels with a
//    minimum latency L, and computes the classic Chandy-Misra-Bryant safe
//    horizon: shard s may process events up to
//
//        min( min over peers p of clock(p) + L,
//             min arrival of any pending inbound message to s ).
//
//    Below that bound no yet-unsent message can arrive (every future send
//    departs at >= the sender's clock and rides for >= L) and no pending
//    one is jumped over; the within-machine analogue of L is the batch
//    boundary, at which the executor layer already synchronizes.
//
// Host-thread configuration (--host-threads=N) also lives here so the
// bench layer and the engines agree on one setting. N=1 is the strict
// sequential mode: runners execute inline on the caller with no thread
// machinery at all.

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/time.hpp"

namespace aam::sim {

using ShardId = std::uint32_t;
inline constexpr ShardId kNoShard = 0xffffffffu;

/// The shard whose job is running on this host thread (kNoShard outside
/// any shard job, e.g. on the legacy single-threaded path).
ShardId current_shard();

/// RAII installer for the thread-local shard identity; restores the
/// previous identity on destruction (shard jobs never nest in practice,
/// but the guard composes anyway).
class ShardGuard {
 public:
  explicit ShardGuard(ShardId id);
  ~ShardGuard();
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  ShardId prev_;
};

/// Deterministic per-shard seed: a pure function of (master_seed, shard),
/// independent of host scheduling. Distinct shards get decorrelated
/// streams; shard 0 does NOT degenerate to the master seed.
std::uint64_t shard_seed(std::uint64_t master_seed, ShardId shard);

/// Host worker threads the parallel backend may use (>= 1). Defaults to 1
/// (sequential) until set_host_threads() is called; the AAM_HOST_THREADS
/// environment variable, when set, provides the initial value so test
/// binaries can be swept without new flags.
int host_threads();
void set_host_threads(int n);
/// Upper bound for "--host-threads=max": the host's hardware concurrency
/// (at least 1 even when the runtime reports 0).
int max_host_threads();

// ---------------------------------------------------------------------------
// HorizonGate — conservative-lookahead admission control
// ---------------------------------------------------------------------------

/// Tracks shard clocks and in-flight cross-shard messages; answers "how
/// far may shard s safely advance?". Thread-safe: shards update their own
/// clocks and send/deliver concurrently from host workers.
///
/// The gate is conservative, never clairvoyant: safe_horizon(s) only uses
/// the minimum channel latency L and the *current* peer clocks, so it is
/// a lower bound on the arrival time of any message s has not seen yet.
class HorizonGate {
 public:
  /// `min_latency` is the channel lookahead L: every cross-shard message
  /// sent at time t arrives at its destination no earlier than t + L.
  HorizonGate(std::uint32_t num_shards, Time min_latency);

  /// Sets shard `s`'s promise clock: `s` will not perform any action —
  /// in particular, send — before time `t`. A shard that drained its
  /// queue promises infinity; a later inbound delivery re-arms it with a
  /// finite value, so the clock is NOT monotonic by contract: it tracks
  /// the earliest possible next action, which deliveries can pull back.
  void set_clock(ShardId s, Time t);
  Time clock(ShardId s) const;

  /// Registers a message from `src` to `dst` departing at `send_time`
  /// (which must be >= clock(src) at the send). Returns a ticket for
  /// deliver(). The message's arrival lower bound send_time + L enters
  /// dst's horizon until delivered.
  std::uint64_t send(ShardId src, ShardId dst, Time send_time);

  /// Marks a previously sent message as consumed by its destination.
  void deliver(std::uint64_t ticket);

  /// The conservative safe horizon of shard `s` (see file comment).
  /// With no peers and no pending traffic this is +infinity.
  Time safe_horizon(ShardId s) const;

  /// True when shard `s` may process an event stamped `event_time`
  /// without risking a causality violation from a cross-shard message.
  bool admissible(ShardId s, Time event_time) const {
    return event_time <= safe_horizon(s);
  }

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(clocks_.size());
  }
  Time min_latency() const { return latency_; }
  std::uint64_t messages_pending() const;

 private:
  struct Pending {
    ShardId dst = 0;
    Time arrival_lb = 0;
    bool delivered = false;
  };

  Time safe_horizon_locked(ShardId s) const;

  mutable std::mutex mu_;
  Time latency_;
  std::vector<Time> clocks_;
  std::vector<Pending> pending_;  ///< ticket-indexed, append-only
  std::uint64_t undelivered_ = 0;
};

}  // namespace aam::sim
