#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <thread>

#include "util/check.hpp"

namespace aam::sim {

namespace {

thread_local ShardId t_current_shard = kNoShard;

// mix64 finalizer (splitmix64), the same diffusion primitive util::Rng
// uses for stream forking. Reimplemented here to keep sim's dependency
// surface header-light; the constant choices match rng.hpp.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<int> g_host_threads{0};  // 0 = not yet initialised

int initial_host_threads() {
  if (const char* env = std::getenv("AAM_HOST_THREADS"); env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<int>(std::min<long>(v, 1024));
    }
  }
  return 1;
}

}  // namespace

ShardId current_shard() { return t_current_shard; }

ShardGuard::ShardGuard(ShardId id) : prev_(t_current_shard) {
  t_current_shard = id;
}

ShardGuard::~ShardGuard() { t_current_shard = prev_; }

std::uint64_t shard_seed(std::uint64_t master_seed, ShardId shard) {
  // Mirror util::Rng::fork's keyed-stream construction so shard streams
  // and thread streams draw from the same decorrelated family.
  return mix64(master_seed ^
               mix64(static_cast<std::uint64_t>(shard) + 1 ^
                     0x5bf03635d1f2b0e9ULL));
}

int host_threads() {
  int v = g_host_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    v = initial_host_threads();
    g_host_threads.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_host_threads(int n) {
  AAM_CHECK_MSG(n >= 1, "--host-threads must be >= 1");
  g_host_threads.store(n, std::memory_order_relaxed);
}

int max_host_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// ---------------------------------------------------------------------------
// HorizonGate
// ---------------------------------------------------------------------------

HorizonGate::HorizonGate(std::uint32_t num_shards, Time min_latency)
    : latency_(min_latency), clocks_(num_shards, 0) {
  AAM_CHECK(num_shards >= 1);
  AAM_CHECK_MSG(min_latency > 0,
                "conservative lookahead requires a positive channel latency");
}

void HorizonGate::set_clock(ShardId s, Time t) {
  std::lock_guard<std::mutex> lock(mu_);
  AAM_CHECK(s < clocks_.size());
  clocks_[s] = t;
}

Time HorizonGate::clock(ShardId s) const {
  std::lock_guard<std::mutex> lock(mu_);
  AAM_CHECK(s < clocks_.size());
  return clocks_[s];
}

std::uint64_t HorizonGate::send(ShardId src, ShardId dst, Time send_time) {
  std::lock_guard<std::mutex> lock(mu_);
  AAM_CHECK(src < clocks_.size() && dst < clocks_.size());
  AAM_CHECK_MSG(send_time >= clocks_[src],
                "a shard cannot send from its own past");
  Pending p;
  p.dst = dst;
  p.arrival_lb = send_time + latency_;
  pending_.push_back(p);
  ++undelivered_;
  return pending_.size() - 1;
}

void HorizonGate::deliver(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  AAM_CHECK(ticket < pending_.size());
  AAM_CHECK_MSG(!pending_[ticket].delivered, "message delivered twice");
  pending_[ticket].delivered = true;
  --undelivered_;
}

Time HorizonGate::safe_horizon_locked(ShardId s) const {
  Time h = std::numeric_limits<Time>::infinity();
  for (ShardId p = 0; p < clocks_.size(); ++p) {
    if (p == s) continue;
    h = std::min(h, clocks_[p] + latency_);
  }
  if (undelivered_ > 0) {
    for (const Pending& m : pending_) {
      if (!m.delivered && m.dst == s) h = std::min(h, m.arrival_lb);
    }
  }
  return h;
}

Time HorizonGate::safe_horizon(ShardId s) const {
  std::lock_guard<std::mutex> lock(mu_);
  AAM_CHECK(s < clocks_.size());
  return safe_horizon_locked(s);
}

std::uint64_t HorizonGate::messages_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return undelivered_;
}

}  // namespace aam::sim
