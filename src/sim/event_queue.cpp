#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aam::sim {

std::uint64_t EventQueue::push(Time time, std::uint32_t thread,
                               std::uint32_t kind, std::uint64_t payload) {
  AAM_DCHECK(time >= 0);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{time, seq, thread, kind, payload});
  std::push_heap(heap_.begin(), heap_.end(), Less{});
  return seq;
}

Time EventQueue::peek_time() const {
  AAM_CHECK(!heap_.empty());
  return heap_.front().time;
}

Event EventQueue::pop() {
  AAM_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Less{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

Time Backoff::window(int attempt) const {
  Time w = base_;
  for (int i = 0; i < attempt && w < max_; ++i) w *= 2.0;
  return std::min(w, max_);
}

Time Backoff::wait(int attempt, double u01) const {
  const Time w = window(attempt);
  // (0, w]: never zero, so two conflicting parties cannot retry in lockstep.
  return w * (1.0 - u01 * 0.999);
}

}  // namespace aam::sim
