#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aam::sim {

void EventQueue::sift_up(std::size_t i) {
  const Event e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i, const Event& e) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventQueue::repair_hole() {
  hole_ = false;
  const Event last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
}

Time Backoff::window(int attempt) const {
  Time w = base_;
  for (int i = 0; i < attempt && w < max_; ++i) w *= 2.0;
  return std::min(w, max_);
}

Time Backoff::wait(int attempt, double u01) const {
  const Time w = window(attempt);
  // (0, w]: never zero, so two conflicting parties cannot retry in lockstep.
  return w * (1.0 - u01 * 0.999);
}

}  // namespace aam::sim
