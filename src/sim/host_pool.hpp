#pragma once

// Host worker pool of the parallel DES backend.
//
// HostPool owns N-1 detachedly parked std::threads plus the calling
// thread; ShardRunner::run() hands them a job list and self-schedules it
// with an atomic cursor (the per-CPU run-queue idiom: workers pull the
// next unstarted shard instead of being assigned static slices, so a
// heavyweight shard — say STM PageRank at scale 18 — does not leave three
// workers idle behind a static partition).
//
// Determinism contract: a shard job must be a pure function of its
// ShardId (plus whatever immutable inputs the caller closed over). The
// runner guarantees each job runs exactly once, under ShardGuard(id),
// and that all side effects are visible to the caller when run()
// returns; callers write results into pre-sized slot `id` of an output
// vector and assemble them in shard order, so the observable output is
// identical for every --host-threads value. With workers == 1 (or a
// single job) run() executes inline on the caller with no thread
// machinery — that is the sequential engine, byte-for-byte.

#include <cstddef>
#include <functional>

#include "sim/shard.hpp"

namespace aam::sim {

/// Runs `job(0) .. job(n-1)` across up to `workers` host threads.
class ShardRunner {
 public:
  /// `workers` <= 0 means "use sim::host_threads()".
  explicit ShardRunner(int workers = 0);

  int workers() const { return workers_; }

  /// Executes all jobs; returns when every job has finished. The first
  /// exception thrown by any job is rethrown on the caller after the
  /// remaining workers drain (pending unstarted jobs are cancelled).
  void run(std::size_t num_jobs, const std::function<void(ShardId)>& job);

 private:
  int workers_;
};

/// Convenience: run `n` shard jobs on the configured host threads.
inline void parallel_shards(std::size_t n,
                            const std::function<void(ShardId)>& job) {
  ShardRunner(0).run(n, job);
}

}  // namespace aam::sim
