#pragma once

// Schedule-controller seam for the model checker (src/mc/; DESIGN.md §11).
//
// A DesMachine normally drains its event queue in deterministic
// (time, seq) order. Under run_controlled() the machine instead exposes
// the *frontier* — every pending event, i.e. every runnable simulated
// thread's next decision point — to an external ScheduleController and
// dispatches whichever one the controller picks. Because each engine
// thread keeps at most one event in flight (kNext → commit-probe →
// commit-final → kNext chains; see des_engine.cpp), the frontier is
// exactly the set of schedulable thread transitions, so a controller
// enumerates thread interleavings the way a stateless model checker
// needs to.
//
// The seam is inert when unused: run()/step() never consult it and
// dispatch order is bit-identical to builds without it.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "sim/event_queue.hpp"

namespace aam::sim {

/// What dispatching a frontier event would do — the decision-point
/// vocabulary of schedule traces. Mirrors the DES engine's event kinds,
/// with kRetry split by the pending thread's serialize intent (stable
/// while the event is pending: only the thread's own dispatch flips it).
enum class ChoiceKind : std::uint8_t {
  kNext,           ///< run the thread's next activity (stage/execute)
  kCommitProbe,    ///< mid-flight validation of a speculative txn
  kCommitFinal,    ///< commit point of a speculative txn
  kSpecRetry,      ///< re-run an aborted txn speculatively
  kSerialAcquire,  ///< take the fallback lock and run irrevocably
  kSerialCommit,   ///< release the fallback lock, publish writes
  kCallback,       ///< scheduled host callback (network delivery etc.)
};

/// Trace code letter, e.g. '0n' = thread 0 kNext. Stable: committed mc
/// golden traces depend on these spellings.
char code_of(ChoiceKind kind);

/// Human-readable name ("commit-final", ...) for pretty-printed traces.
const char* to_string(ChoiceKind kind);

/// Inverse of code_of; nullopt for an unknown letter.
std::optional<ChoiceKind> kind_from_code(char code);

/// One schedulable decision point: a pending event plus its
/// classification at the instant the frontier was assembled.
struct Choice {
  Event event;
  ChoiceKind kind = ChoiceKind::kNext;

  std::uint32_t thread() const { return event.thread; }
};

/// Picks which frontier decision point the machine dispatches next.
/// `ready` is never empty and its order is deterministic (event-queue
/// drain order). Return kStopRun to end the run early; the machine is
/// left mid-schedule (useful for probing frontiers and bounded replay).
class ScheduleController {
 public:
  static constexpr std::size_t kStopRun = static_cast<std::size_t>(-1);

  virtual ~ScheduleController() = default;
  virtual std::size_t choose(std::span<const Choice> ready) = 0;
};

inline char code_of(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kNext: return 'n';
    case ChoiceKind::kCommitProbe: return 'p';
    case ChoiceKind::kCommitFinal: return 'c';
    case ChoiceKind::kSpecRetry: return 'r';
    case ChoiceKind::kSerialAcquire: return 's';
    case ChoiceKind::kSerialCommit: return 'S';
    case ChoiceKind::kCallback: return 'k';
  }
  return '?';
}

inline const char* to_string(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kNext: return "next";
    case ChoiceKind::kCommitProbe: return "commit-probe";
    case ChoiceKind::kCommitFinal: return "commit-final";
    case ChoiceKind::kSpecRetry: return "spec-retry";
    case ChoiceKind::kSerialAcquire: return "serial-acquire";
    case ChoiceKind::kSerialCommit: return "serial-commit";
    case ChoiceKind::kCallback: return "callback";
  }
  return "?";
}

inline std::optional<ChoiceKind> kind_from_code(char code) {
  switch (code) {
    case 'n': return ChoiceKind::kNext;
    case 'p': return ChoiceKind::kCommitProbe;
    case 'c': return ChoiceKind::kCommitFinal;
    case 'r': return ChoiceKind::kSpecRetry;
    case 's': return ChoiceKind::kSerialAcquire;
    case 'S': return ChoiceKind::kSerialCommit;
    case 'k': return ChoiceKind::kCallback;
  }
  return std::nullopt;
}

}  // namespace aam::sim
