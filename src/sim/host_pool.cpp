#include "sim/host_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace aam::sim {

ShardRunner::ShardRunner(int workers)
    : workers_(workers <= 0 ? host_threads() : workers) {
  AAM_CHECK(workers_ >= 1);
}

void ShardRunner::run(std::size_t num_jobs,
                      const std::function<void(ShardId)>& job) {
  if (num_jobs == 0) return;

  // Sequential engine: no threads, no guards beyond the shard identity.
  if (workers_ == 1 || num_jobs == 1) {
    for (std::size_t i = 0; i < num_jobs; ++i) {
      ShardGuard guard(static_cast<ShardId>(i));
      job(static_cast<ShardId>(i));
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto drain = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_jobs) return;
      ShardGuard guard(static_cast<ShardId>(i));
      try {
        job(static_cast<ShardId>(i));
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        // Cancel unstarted jobs; in-flight ones finish on their own.
        cursor.store(num_jobs, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t extra = std::min<std::size_t>(
      static_cast<std::size_t>(workers_) - 1, num_jobs - 1);
  std::vector<std::thread> threads;
  threads.reserve(extra);
  for (std::size_t t = 0; t < extra; ++t) threads.emplace_back(drain);
  drain();  // the caller is worker 0
  for (std::thread& t : threads) t.join();

  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace aam::sim
