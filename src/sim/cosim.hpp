#pragma once

// Windowed conservative co-simulation over coupled shards.
//
// WindowedCoSim drives K shards that exchange messages over channels with
// a minimum latency L. Execution proceeds in globally agreed windows:
//
//   1. H = min over live shards of next_event_time() + L  (the horizon);
//   2. every shard steps its local event queue up to H in parallel —
//      safe, because any message a peer sends inside this window departs
//      at >= the window's lower bound and arrives at >= that bound + L
//      = H, i.e. strictly beyond what anyone is executing;
//   3. barrier: messages posted during the window are sorted by
//      (arrival time, source shard, per-source sequence) — the (time,
//      seq, shard) total order — and applied to their destinations by
//      the coordinator while all shards are idle;
//   4. repeat until no shard has events and nothing is in flight.
//
// Because each shard's step is single-threaded and internally ordered by
// its own (time, seq) event queue, and because cross-shard deliveries are
// applied in the deterministic barrier order, the trace — and therefore
// every simulated time, counter, and heap word — is bit-identical for
// every host-thread count, including the sequential inline mode.
//
// The within-machine analogue: a DesMachine's batch boundaries play the
// role of L (the executor layer already synchronizes there), while this
// driver covers the between-machines case where L is the network latency.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/host_pool.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

namespace aam::sim {

/// One coupled shard: a self-contained event-driven simulation that can
/// execute in horizon-bounded steps. htm::DesMachine satisfies this shape
/// via step()/has_pending_events()/next_event_time().
class CoSimShard {
 public:
  virtual ~CoSimShard() = default;
  virtual bool has_events() const = 0;
  /// Earliest pending local event; only called when has_events().
  virtual Time next_time() const = 0;
  /// Process local events with time <= horizon. Cross-shard effects must
  /// be routed through WindowedCoSim::post(), never applied directly.
  virtual void step(Time horizon) = 0;
};

class WindowedCoSim {
 public:
  /// `lookahead` is the channel latency L (> 0). Shards are identified by
  /// their index in `shards`.
  WindowedCoSim(std::vector<CoSimShard*> shards, Time lookahead,
                int host_threads = 0);

  /// Posts a cross-shard message from the currently stepping shard `src`
  /// to `dst`: `apply` runs on the coordinator at the next barrier, with
  /// every shard idle, and must schedule the effect at `arrival_time`
  /// inside the destination (e.g. DesMachine::schedule_callback).
  /// arrival_time must respect the channel: >= send_time + L.
  void post(ShardId src, ShardId dst, Time send_time, Time arrival_time,
            std::function<void()> apply);

  /// Runs windows until every shard is out of events and no message is
  /// in flight. Returns the number of windows executed.
  std::uint64_t run();

  const HorizonGate& gate() const { return gate_; }

 private:
  struct Posted {
    Time arrival = 0;
    ShardId src = 0;
    ShardId dst = 0;
    std::uint64_t src_seq = 0;  ///< per-source posting order
    std::uint64_t ticket = 0;   ///< HorizonGate ticket
    std::function<void()> apply;
  };

  std::vector<CoSimShard*> shards_;
  Time lookahead_;
  ShardRunner runner_;
  HorizonGate gate_;
  /// Per-source outboxes: a stepping shard appends only to its own slot,
  /// so window execution needs no cross-shard synchronization beyond the
  /// gate's ticket ledger.
  std::vector<std::vector<Posted>> outbox_;
  std::vector<std::uint64_t> post_seq_;
};

}  // namespace aam::sim
