#pragma once

// Deterministic discrete-event queue.
//
// Events are ordered by (time, sequence number); the sequence number is
// assigned at push time, so ties resolve in insertion order and a run is
// bit-reproducible regardless of heap internals. (time, seq) is a total
// order — seq is unique — so *any* correct heap pops the same sequence;
// the layout tricks below cannot change observable order. Across queues
// of different shards, (time, seq, shard) extends this to a total order —
// the tie-break the parallel backend's barrier merge uses (cosim.hpp).
//
// Shard ownership: under the parallel backend each queue belongs to
// exactly one shard (sim/shard.hpp) and must only ever be touched from
// that shard's job. bind_shard() arms an always-on affinity check in
// push/pop, so a cross-shard mutation bug dies deterministically on the
// offending access instead of racing. Unbound queues (the legacy
// single-threaded path) skip the thread-local lookup entirely.

#include <cstdint>
#include <vector>

#include "sim/shard.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace aam::sim {

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;    ///< insertion order, breaks time ties
  std::uint32_t thread = 0; ///< logical thread (or node endpoint) id
  std::uint32_t kind = 0;   ///< engine-defined discriminator
  std::uint64_t payload = 0;///< engine-defined payload (e.g. message id)
};

class EventQueue {
 public:
  /// Pre-sizes the backing store (e.g. from the machine's thread count) so
  /// steady-state push/pop never reallocates.
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Binds the queue to the shard that owns it. From then on every push
  /// and pop must happen on a host thread whose current_shard() matches;
  /// a mismatch aborts deterministically. Call once, from the owning
  /// shard's job, before the queue is used in parallel context.
  void bind_shard(ShardId owner) {
    AAM_CHECK_MSG(owner_ == kNoShard || owner_ == owner,
                  "event queue already bound to a different shard");
    owner_ = owner;
  }
  ShardId bound_shard() const { return owner_; }

  /// Enqueue an event at `time`. Returns the assigned sequence number.
  std::uint64_t push(Time time, std::uint32_t thread, std::uint32_t kind,
                     std::uint64_t payload = 0) {
    AAM_DCHECK(time >= 0);
    check_owner();
    const std::uint64_t seq = next_seq_++;
    const Event e{time, seq, thread, kind, payload};
    if (hole_) {
      // Fast path: the previous pop left a hole at the root. Placing the
      // new event straight into it merges pop's deferred sift-down with
      // push's sift-up into one sift-down. In the DES loop nearly every
      // dispatched event pushes a follow-up (kNext -> kCommit -> kRetry /
      // kNext chains), so this is the common case.
      hole_ = false;
      sift_down(0, e);
    } else {
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    }
    return seq;
  }

  bool empty() const { return heap_.size() == (hole_ ? 1u : 0u); }
  std::size_t size() const { return heap_.size() - (hole_ ? 1u : 0u); }

  /// Earliest event time; queue must be non-empty.
  Time peek_time() const {
    AAM_CHECK(!empty());
    if (!hole_) return heap_[0].time;
    // Root is a hole; the subtrees under it are intact heaps, so the
    // minimum is the smaller of the two subtree roots.
    if (heap_.size() == 2 || before(heap_[1], heap_[2])) return heap_[1].time;
    return heap_[2].time;
  }

  /// Remove and return the earliest event. The root slot is left as a
  /// hole for the next push to fill; the heap is repaired lazily.
  Event pop() {
    AAM_CHECK(!empty());
    check_owner();
    if (hole_) repair_hole();
    Event e = heap_[0];
    hole_ = true;
    return e;
  }

  /// Total events ever pushed (diagnostics).
  std::uint64_t pushed() const { return next_seq_; }

  /// Visits every pending event in unspecified order (checkpointing: the
  /// caller sorts by (time, seq) itself). Skips the root hole if present.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    // When hole_ is set, heap_[0] is the logically-removed previous pop.
    for (std::size_t i = hole_ ? 1 : 0; i < heap_.size(); ++i) fn(heap_[i]);
  }

  /// Drops every pending event. next_seq_ keeps counting up so sequence
  /// numbers pushed after a restore still order after all prior pushes —
  /// only the *relative* order of re-pushed events matters for
  /// reproducibility.
  void clear() {
    check_owner();
    heap_.clear();
    hole_ = false;
  }

 private:
  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i, const Event& e);
  void repair_hole();

  /// Affinity check, armed only once bind_shard() has run: unbound queues
  /// (the legacy single-threaded path) pay a single branch, never the
  /// thread-local read.
  void check_owner() const {
    if (owner_ != kNoShard) {
      AAM_CHECK_MSG(current_shard() == owner_,
                    "event queue touched from a foreign shard");
    }
  }

  std::vector<Event> heap_;  ///< binary min-heap on (time, seq)
  bool hole_ = false;  ///< heap_[0] is logically removed (pop deferred)
  std::uint64_t next_seq_ = 0;
  ShardId owner_ = kNoShard;  ///< owning shard once bound (kNoShard = any)
};

/// Truncated exponential backoff with deterministic jitter, used by the
/// RTM retry loop (§4.1) and the ownership protocol (§4.3).
class Backoff {
 public:
  Backoff(Time base, Time max) : base_(base), max_(max) {}

  /// Window for the given retry attempt (0-based), before jitter.
  Time window(int attempt) const;

  /// Jittered wait: uniform in (0, window(attempt)], drawn from `u01`
  /// which must be in [0,1).
  Time wait(int attempt, double u01) const;

 private:
  Time base_;
  Time max_;
};

}  // namespace aam::sim
