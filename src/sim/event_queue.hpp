#pragma once

// Deterministic discrete-event queue.
//
// Events are ordered by (time, sequence number); the sequence number is
// assigned at push time, so ties resolve in insertion order and a run is
// bit-reproducible regardless of heap internals.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace aam::sim {

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;    ///< insertion order, breaks time ties
  std::uint32_t thread = 0; ///< logical thread (or node endpoint) id
  std::uint32_t kind = 0;   ///< engine-defined discriminator
  std::uint64_t payload = 0;///< engine-defined payload (e.g. message id)
};

class EventQueue {
 public:
  /// Enqueue an event at `time`. Returns the assigned sequence number.
  std::uint64_t push(Time time, std::uint32_t thread, std::uint32_t kind,
                     std::uint64_t payload = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest event time; queue must be non-empty.
  Time peek_time() const;

  /// Remove and return the earliest event.
  Event pop();

  /// Total events ever pushed (diagnostics).
  std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Less {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Truncated exponential backoff with deterministic jitter, used by the
/// RTM retry loop (§4.1) and the ownership protocol (§4.3).
class Backoff {
 public:
  Backoff(Time base, Time max) : base_(base), max_(max) {}

  /// Window for the given retry attempt (0-based), before jitter.
  Time window(int attempt) const;

  /// Jittered wait: uniform in (0, window(attempt)], drawn from `u01`
  /// which must be in [0,1).
  Time wait(int attempt, double u01) const;

 private:
  Time base_;
  Time max_;
};

}  // namespace aam::sim
