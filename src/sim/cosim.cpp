#include "sim/cosim.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace aam::sim {

WindowedCoSim::WindowedCoSim(std::vector<CoSimShard*> shards, Time lookahead,
                             int host_threads)
    : shards_(std::move(shards)),
      lookahead_(lookahead),
      runner_(host_threads),
      gate_(static_cast<std::uint32_t>(shards_.size()), lookahead),
      outbox_(shards_.size()),
      post_seq_(shards_.size(), 0) {
  AAM_CHECK(!shards_.empty());
  for (const CoSimShard* s : shards_) AAM_CHECK(s != nullptr);
}

void WindowedCoSim::post(ShardId src, ShardId dst, Time send_time,
                         Time arrival_time, std::function<void()> apply) {
  AAM_CHECK(src < shards_.size() && dst < shards_.size());
  AAM_CHECK_MSG(current_shard() == src,
                "cross-shard post from a foreign shard context");
  AAM_CHECK_MSG(arrival_time >= send_time + lookahead_,
                "cross-shard message undercuts the channel lookahead L");
  Posted p;
  p.arrival = arrival_time;
  p.src = src;
  p.dst = dst;
  p.src_seq = post_seq_[src]++;
  p.ticket = gate_.send(src, dst, send_time);
  p.apply = std::move(apply);
  outbox_[src].push_back(std::move(p));
}

std::uint64_t WindowedCoSim::run() {
  const std::size_t k = shards_.size();
  std::uint64_t windows = 0;
  std::vector<Time> horizon(k, 0);

  while (true) {
    // Barrier: apply the previous window's cross-shard messages in the
    // deterministic (arrival, src, per-src seq) order, every shard idle.
    std::vector<Posted> arriving;
    for (std::vector<Posted>& box : outbox_) {
      for (Posted& p : box) arriving.push_back(std::move(p));
      box.clear();
    }
    std::sort(arriving.begin(), arriving.end(),
              [](const Posted& a, const Posted& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.src != b.src) return a.src < b.src;
                return a.src_seq < b.src_seq;
              });
    for (Posted& p : arriving) {
      // The delivery acts on the destination's state (its shard-bound
      // event queue), so it runs under the destination's identity; every
      // shard is idle at the barrier, so this cannot race.
      ShardGuard guard(p.dst);
      p.apply();
      gate_.deliver(p.ticket);
    }
    AAM_CHECK(gate_.messages_pending() == 0);

    // Window planning: each shard promises not to act (and so not to
    // send) before its next local event; the gate turns those promises
    // into per-shard conservative horizons.
    bool any_events = false;
    for (ShardId s = 0; s < k; ++s) {
      const bool live = shards_[s]->has_events();
      any_events = any_events || live;
      gate_.set_clock(s, live ? shards_[s]->next_time()
                              : std::numeric_limits<Time>::infinity());
    }
    if (!any_events) break;
    for (ShardId s = 0; s < k; ++s) horizon[s] = gate_.safe_horizon(s);

    ++windows;
    runner_.run(k, [&](ShardId s) {
      CoSimShard& shard = *shards_[s];
      if (!shard.has_events() || shard.next_time() > horizon[s]) return;
      shard.step(horizon[s]);
    });
  }
  return windows;
}

}  // namespace aam::sim
