#pragma once

// Level-synchronous parallel BFS (§3.3.2, §5.5, §6.1).
//
// All mechanisms share the same frontier expansion: threads claim chunks of
// the current frontier, scan adjacency (paying per-edge costs), pre-check
// the visited state of each neighbor (the Graph500 optimization the paper
// highlights: "reduces the amount of fine-grained synchronization by
// checking if the vertex was visited before executing an atomic"), and then
// *visit* the unvisited candidates through a core::ActivityExecutor. The
// selected core::Mechanism decides how a batch of visits synchronizes:
// one coarse HTM transaction (AAM, §4.2 Listing 8), one CAS per candidate
// (the Graph500 baseline), per-vertex fine locks (Galois-like), the global
// serial lock, or software TM.

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct BfsOptions {
  graph::Vertex root = 0;
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  int batch = 16;        ///< M: vertices visited per coarse activity
  int scan_chunk = 512;  ///< frontier *edges* claimed per work unit
  double barrier_cost_ns = 400.0;  ///< per-level synchronization cost
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct BfsResult {
  std::vector<graph::Vertex> parent;    ///< BFS tree (kInvalidVertex: unvisited)
  std::vector<double> level_times_ns;   ///< per-level makespan (Fig 1)
  double total_time_ns = 0;
  std::uint64_t vertices_visited = 0;
  std::uint64_t edges_scanned = 0;
  htm::HtmStats stats;                  ///< engine counters for this run
};

/// Runs BFS on `machine` (clocks and statistics are reset first).
/// Algorithm state lives on the machine's heap for the duration.
BfsResult run_bfs(htm::DesMachine& machine, const graph::Graph& graph,
                  const BfsOptions& options);

/// Validates a BFS tree: every visited vertex reaches the root through
/// parent edges that exist in the graph, the visited set equals the set
/// reachable from the root, and depths match true BFS levels.
bool validate_bfs_tree(const graph::Graph& graph, graph::Vertex root,
                       const std::vector<graph::Vertex>& parent);

}  // namespace aam::algorithms
