#pragma once

// A minimal GraphBLAS-flavoured layer on top of AAM (§7: "AAM can be used
// to implement the GraphBLAS abstraction and to accelerate ... graph
// analytics based on sparse linear algebra").
//
// The core primitive is vxm — sparse vector-times-matrix over a semiring:
//
//     out[w]  ⊕=  in[v] ⊗ A[v][w]      for every edge (v, w)
//
// The scatter-reduce into `out` is exactly the Always-Succeed accumulation
// workload of §3.3.1, so it executes as coarse AAM transactions via the
// AamRuntime: one transaction performs M row-operators.
//
// Three standard semirings are provided; one vxm instantiates one graph
// kernel:
//   PlusTimes  -> one PageRank/SpMV iteration
//   MinPlus    -> one Bellman-Ford relaxation round (SSSP step)
//   OrAnd      -> one reachability/BFS frontier expansion step

#include <algorithm>
#include <limits>
#include <span>

#include "core/runtime.hpp"
#include "graph/csr.hpp"

namespace aam::algorithms::grb {

/// Semiring concept: additive identity `zero()`, combine `add`, `mul`.
/// Scalars must be <= 8 bytes and trivially copyable (Txn constraints).
struct PlusTimes {
  using Scalar = double;
  static constexpr Scalar zero() { return 0.0; }
  static Scalar add(Scalar a, Scalar b) { return a + b; }
  static Scalar mul(Scalar a, Scalar b) { return a * b; }
};

/// Tropical semiring: path-length composition.
struct MinPlus {
  using Scalar = double;
  static constexpr Scalar zero() {
    return std::numeric_limits<double>::infinity();
  }
  static Scalar add(Scalar a, Scalar b) { return std::min(a, b); }
  static Scalar mul(Scalar a, Scalar b) { return a + b; }
};

/// Boolean semiring: reachability.
struct OrAnd {
  using Scalar = std::uint64_t;
  static constexpr Scalar zero() { return 0; }
  static Scalar add(Scalar a, Scalar b) { return a | b; }
  static Scalar mul(Scalar a, Scalar b) { return a & b; }
};

struct VxmOptions {
  int batch = 16;  ///< M: row operators per transaction
  /// Use edge weights as matrix values (requires a weighted graph);
  /// otherwise every stored entry is multiplicative identity-like `one`.
  bool use_weights = false;
  double one = 1.0;  ///< matrix value for unweighted graphs
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
};

/// out ⊕= in ⊗ A, with A the graph's adjacency structure. `out` must live
/// on the machine's SimHeap and be pre-initialized (typically to
/// Semiring::zero()); `in` is read-only.
template <typename Semiring>
void vxm(htm::DesMachine& machine, const graph::Graph& graph,
         std::span<const typename Semiring::Scalar> in,
         std::span<typename Semiring::Scalar> out,
         const VxmOptions& options = {}) {
  using Scalar = typename Semiring::Scalar;
  static_assert(sizeof(Scalar) <= 8);
  AAM_CHECK(in.size() == graph.num_vertices());
  AAM_CHECK(out.size() == graph.num_vertices());
  AAM_CHECK(!options.use_weights || graph.has_weights());

  core::AamRuntime runtime(machine, {.batch = options.batch,
                                     .mechanism = options.mechanism,
                                     .decorator = options.decorator});
  runtime.for_each(graph.num_vertices(), [&](auto& access,
                                             std::uint64_t item) {
    const auto v = static_cast<graph::Vertex>(item);
    const Scalar xv = in[v];
    if (xv == Semiring::zero()) return;  // sparse input: skip empty rows
    const auto nbrs = graph.neighbors(v);
    const auto ws =
        options.use_weights ? graph.weights(v) : std::span<const float>{};
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const Scalar a = options.use_weights
                           ? static_cast<Scalar>(ws[e])
                           : static_cast<Scalar>(options.one);
      const Scalar contribution = Semiring::mul(xv, a);
      const graph::Vertex w = nbrs[e];
      access.store(out[w], Semiring::add(access.load(out[w]), contribution));
    }
  });
}

/// Element-wise out[i] = add(out[i], in[i]) (GraphBLAS eWiseAdd with the
/// semiring's monoid), executed transactionally in batches.
template <typename Semiring>
void ewise_add(htm::DesMachine& machine,
               std::span<const typename Semiring::Scalar> in,
               std::span<typename Semiring::Scalar> out, int batch = 64) {
  AAM_CHECK(in.size() == out.size());
  core::AamRuntime runtime(machine, {.batch = batch});
  runtime.for_each(out.size(), [&](auto& access, std::uint64_t i) {
    access.store(out[i], Semiring::add(access.load(out[i]), in[i]));
  });
}

}  // namespace aam::algorithms::grb
