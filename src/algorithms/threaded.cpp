#include "algorithms/threaded.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <span>
#include <thread>

#include "algorithms/operators.hpp"
#include "core/executor.hpp"
#include "htm/stm_engine.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

using graph::Vertex;
using graph::kInvalidVertex;

ThreadedBfsResult threaded_bfs(const graph::Graph& graph, graph::Vertex root,
                               int threads, int batch) {
  AAM_CHECK(root < graph.num_vertices());
  AAM_CHECK(threads >= 1 && batch >= 1);

  const Vertex n = graph.num_vertices();
  ThreadedBfsResult result;
  result.parent.assign(n, kInvalidVertex);
  result.parent[root] = root;

  htm::StmEngine engine;
  std::vector<Vertex> frontier{root};
  std::vector<std::vector<Vertex>> next(static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> done{false};

  // The completion step runs on exactly one thread per phase: merge the
  // per-thread next frontiers and re-arm the cursor.
  auto on_completion = [&]() noexcept {
    frontier.clear();
    for (auto& nf : next) {
      frontier.insert(frontier.end(), nf.begin(), nf.end());
      nf.clear();
    }
    cursor.store(0, std::memory_order_relaxed);
    if (frontier.empty()) done.store(true, std::memory_order_relaxed);
  };
  std::barrier barrier(threads, on_completion);

  const auto start = std::chrono::steady_clock::now();  // lint:allow-wallclock
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<std::pair<Vertex, Vertex>> pending;
      std::vector<std::uint64_t> claimed;
      const std::span<Vertex> parent(result.parent);
      auto flush = [&] {
        if (pending.empty()) return;
        engine.atomically([&](htm::StmTxn& tx) {
          // The body may re-execute on aborts: restage `claimed` each try.
          claimed.clear();
          core::StmAccess access(tx, &claimed);
          for (const auto& [w, u] : pending) {
            // The shared Listing 4 operator (algorithms/operators.hpp).
            if (ops::bfs_visit(access, parent, w, u)) access.emit(w);
          }
        });
        for (std::uint64_t w : claimed) {
          next[static_cast<std::size_t>(t)].push_back(static_cast<Vertex>(w));
        }
        pending.clear();
      };

      while (!done.load(std::memory_order_relaxed)) {
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const Vertex u = frontier[i];
          for (Vertex w : graph.neighbors(u)) {
            if (result.parent[w] != kInvalidVertex) continue;  // pre-check
            pending.emplace_back(w, u);
            if (static_cast<int>(pending.size()) >= batch) flush();
          }
        }
        flush();
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : pool) th.join();

  const auto elapsed = std::chrono::steady_clock::now() - start;  // lint:allow-wallclock
  result.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  result.stm_commits = engine.commits();
  result.stm_aborts = engine.aborts();
  return result;
}

ThreadedPrResult threaded_pagerank(const graph::Graph& graph, int iterations,
                                   double damping, int threads, int batch) {
  AAM_CHECK(threads >= 1 && batch >= 1 && iterations >= 1);
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);

  ThreadedPrResult result;
  std::vector<double> old_rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> new_rank(n, 0.0);
  const double base = (1.0 - damping) / static_cast<double>(n);

  htm::StmEngine engine;
  std::atomic<Vertex> cursor{0};
  int iterations_left = iterations;

  auto on_completion = [&]() noexcept {
    std::swap(old_rank, new_rank);
    std::fill(new_rank.begin(), new_rank.end(), 0.0);
    cursor.store(0, std::memory_order_relaxed);
    --iterations_left;
  };
  std::barrier barrier(threads, on_completion);

  const auto start = std::chrono::steady_clock::now();  // lint:allow-wallclock
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (iterations_left > 0) {
        for (;;) {
          const Vertex begin = cursor.fetch_add(
              static_cast<Vertex>(batch), std::memory_order_relaxed);
          if (begin >= n) break;
          const Vertex end = std::min<Vertex>(begin + static_cast<Vertex>(batch), n);
          // One STM transaction runs `batch` instances of the shared
          // Listing 3 operator (algorithms/operators.hpp).
          engine.atomically([&](htm::StmTxn& tx) {
            core::StmAccess access(tx);
            const std::span<const double> old_span(old_rank);
            const std::span<double> new_span(new_rank);
            for (Vertex v = begin; v < end; ++v) {
              ops::pagerank_push(access, graph, old_span, new_span, v, base,
                                 damping);
            }
          });
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : pool) th.join();

  const auto elapsed = std::chrono::steady_clock::now() - start;  // lint:allow-wallclock
  result.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  result.rank = std::move(old_rank);
  result.stm_commits = engine.commits();
  result.stm_aborts = engine.aborts();
  return result;
}

}  // namespace aam::algorithms
