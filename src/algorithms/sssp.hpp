#pragma once

// Single-Source Shortest Paths, the BFS generalization the paper names as
// a direct client of the "mark a vertex" activity class (§5.4.1): a
// round-based Bellman-Ford where distance relaxations execute as coarse
// May-Fail transactions, exactly like BFS visits with a payload.

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct SsspOptions {
  graph::Vertex source = 0;
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  int batch = 16;  ///< M: relaxations per coarse activity
  int scan_chunk = 64;
  double barrier_cost_ns = 400.0;
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct SsspResult {
  std::vector<double> distance;  ///< +inf when unreachable
  int rounds = 0;
  std::uint64_t relaxations = 0;  ///< successful distance improvements
  double total_time_ns = 0;
  htm::HtmStats stats;
};

/// Requires a weighted graph with non-negative weights.
SsspResult run_sssp(htm::DesMachine& machine, const graph::Graph& graph,
                    const SsspOptions& options);

/// Sequential Dijkstra reference for validation.
std::vector<double> sssp_reference(const graph::Graph& graph,
                                   graph::Vertex source);

}  // namespace aam::algorithms
