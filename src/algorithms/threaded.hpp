#pragma once

// Real-thread execution backend.
//
// The same AAM operator formulations (coarse transactional BFS visits,
// PageRank rank pushes) running on genuine std::threads with the
// TL2-flavoured STM engine (htm/stm_engine.hpp) instead of the simulator.
// This is the §8 observation — "other mechanisms such as STM could also be
// used" — made executable: the library runs real workloads on machines
// without HTM, and the race/property tests get a second, OS-scheduled
// implementation to cross-check the simulated one.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace aam::algorithms {

struct ThreadedBfsResult {
  std::vector<graph::Vertex> parent;
  double wall_ms = 0;
  std::uint64_t stm_commits = 0;
  std::uint64_t stm_aborts = 0;
};

/// Level-synchronous BFS on `threads` std::threads; vertex visits execute
/// as STM transactions of up to `batch` operators (the coarsened activity
/// of §4.2, software-TM edition). Returns a valid BFS tree.
ThreadedBfsResult threaded_bfs(const graph::Graph& graph, graph::Vertex root,
                               int threads, int batch);

struct ThreadedPrResult {
  std::vector<double> rank;
  double wall_ms = 0;
  std::uint64_t stm_commits = 0;
  std::uint64_t stm_aborts = 0;
};

/// Push-style PageRank (Listing 3) with each vertex operator batch running
/// as one STM transaction (FF & AS: conflicting rank accumulations retry
/// until they commit).
ThreadedPrResult threaded_pagerank(const graph::Graph& graph, int iterations,
                                   double damping, int threads, int batch);

}  // namespace aam::algorithms
