#pragma once

// Mechanism-neutral operator formulations (§3.3).
//
// Each function is one single-element operator body from the paper's
// listings, templated over the access surface so the same code runs under
// every ActivityExecutor — coarse HTM transactions, per-item atomics, fine
// locks, the global serial lock, and the software TM (both in the
// simulator and on real threads via StmAccess, see algorithms/threaded.cpp).
// Instantiations: the non-virtual fast-path access types of
// executor_impl.hpp under devirtualized dispatch, and the virtual
// core::Access seam when a check:: decorator is interposed.

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/executor.hpp"
#include "graph/csr.hpp"

namespace aam::algorithms::ops {

/// BFS visit (Listing 4): claim w for parent u. Returns true when this
/// activity won the vertex. FF & MF: losing the race is an algorithm-level
/// May-Fail, not a hardware abort.
template <typename Acc>
bool bfs_visit(Acc& a, std::span<graph::Vertex> parent, graph::Vertex w,
               graph::Vertex u) {
  return a.cas(parent[w], graph::kInvalidVertex, u);
}

/// PageRank push (Listing 3), FF & AS: vertex v adds its base rank and
/// pushes a damped share of its stale rank onto each neighbor.
template <typename Acc>
void pagerank_push(Acc& a, const graph::Graph& g,
                   std::span<const double> old_rank,
                   std::span<double> new_rank, graph::Vertex v, double base,
                   double damping) {
  a.fetch_add(new_rank[v], base);
  const auto nbrs = g.neighbors(v);
  if (nbrs.empty()) return;
  const double share =
      damping * a.load(old_rank[v]) / static_cast<double>(nbrs.size());
  for (graph::Vertex w : nbrs) a.fetch_add(new_rank[w], share);
}

/// SSSP relaxation (the BFS operator with a distance payload, §5.4.1).
/// Returns true when the distance improved. The retry loop only matters
/// for non-transactional executors; under a transaction the first CAS
/// succeeds or the candidate is stale.
template <typename Acc>
bool sssp_relax(Acc& a, std::span<double> distance, graph::Vertex v,
                double candidate) {
  for (;;) {
    const double current = a.load(distance[v]);
    if (current <= candidate) return false;
    if (a.cas(distance[v], current, candidate)) return true;
  }
}

/// Union-find root walk with mechanism-modelled per-hop loads (no path
/// compression: keeps the chains identical to what a transactional variant
/// re-reads).
template <typename Acc>
graph::Vertex uf_root(Acc& a, std::span<graph::Vertex> parent,
                      graph::Vertex v) {
  graph::Vertex r = v;
  for (;;) {
    const graph::Vertex p = a.load(parent[r]);
    if (p == r) return r;
    r = p;
  }
}

/// Boruvka merge (Listing 5 shape), FR & MF: link the components of u and
/// v with a deterministic orientation (larger root under smaller). Returns
/// false when the components were already united by a concurrent activity.
template <typename Acc>
bool uf_union(Acc& a, std::span<graph::Vertex> parent, graph::Vertex u,
              graph::Vertex v) {
  for (;;) {
    const graph::Vertex ru = uf_root(a, parent, u);
    const graph::Vertex rv = uf_root(a, parent, v);
    if (ru == rv) return false;
    const graph::Vertex hi = std::max(ru, rv);
    const graph::Vertex lo = std::min(ru, rv);
    // A failed CAS means another activity moved this root meanwhile:
    // re-walk from the new roots (non-transactional executors only).
    if (a.cas(parent[hi], hi, lo)) return true;
  }
}

/// Boman coloring assignment (Listing 7 shape), FR & AS: commit the
/// tentative color, then report every clashing neighbor. Each clashing
/// *pair* surrenders one endpoint — the pre-drawn `coin` (stable across
/// transactional re-execution) picks which — or a conflict could survive
/// the round undetected. Emits the vertices to recolor next round.
template <typename Acc>
void color_assign(Acc& a, const graph::Graph& g,
                  std::span<std::uint32_t> color, graph::Vertex v,
                  std::uint32_t tentative, bool coin) {
  a.store(color[v], tentative);
  bool recolor_self = false;
  for (graph::Vertex w : g.neighbors(v)) {
    if (w != v && a.load(color[w]) == tentative) {
      if (coin) {
        a.emit(w);
      } else {
        recolor_self = true;
      }
    }
  }
  if (recolor_self) a.emit(v);
}

/// ST-connectivity visit (Listing 6), FR & AS: claim v for the wave
/// `wave_color`. Emits `hit_mark` when the other wave already owns v (the
/// s-t connection), or `claim_token` when this activity colored v; an
/// already-own-wave vertex emits nothing.
template <typename Acc>
void st_visit(Acc& a, std::span<std::uint32_t> color, graph::Vertex v,
              std::uint32_t wave_color, std::uint32_t white,
              std::uint64_t hit_mark, std::uint64_t claim_token) {
  const std::uint32_t cur = a.load(color[v]);
  if (cur != white && cur != wave_color) {
    a.emit(hit_mark);  // the other wave owns it: s-t connect
    return;
  }
  if (cur == wave_color) return;
  if (a.cas(color[v], white, wave_color)) a.emit(claim_token);
}

}  // namespace aam::algorithms::ops
