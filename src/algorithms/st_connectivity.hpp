#pragma once

// ST connectivity (§3.3.4): are vertices s and t connected?
//
// Two BFS waves start concurrently from s ("grey") and t ("green"); every
// vertex starts "white". The operator (Listing 6) colors a white vertex
// with the wave's color; finding a vertex already holding the *other*
// wave's color proves connectivity — a Fire-and-Return result that makes
// the spawner's failure handler terminate the algorithm (FR & AS).

#include <cstdint>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct StConnOptions {
  graph::Vertex s = 0;
  graph::Vertex t = 1;
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  int batch = 16;       ///< M: operators per coarse activity
  int scan_chunk = 64;
  double barrier_cost_ns = 400.0;
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct StConnResult {
  bool connected = false;
  double total_time_ns = 0;
  std::uint64_t vertices_colored = 0;
  int levels = 0;
  htm::HtmStats stats;
};

StConnResult run_st_connectivity(htm::DesMachine& machine,
                                 const graph::Graph& graph,
                                 const StConnOptions& options);

}  // namespace aam::algorithms
