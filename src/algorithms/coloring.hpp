#pragma once

// Boman et al. distributed graph coloring (§3.3.5), FR & MF.
//
// The heuristic proceeds in rounds. Every vertex in the round's worklist
// picks a tentative color (smallest not used by its neighbors, read from a
// possibly-stale snapshot) and runs the Listing 7 operator: assign the
// color, then check the neighborhood transactionally. If a neighbor holds
// the same color, one of the two — chosen pseudo-randomly — must recolor:
// its id is Fire-and-Returned to the spawner, whose failure handler puts
// it on the next round's worklist. Rounds repeat until conflict-free.

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct ColoringOptions {
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  int batch = 8;  ///< M: operators per coarse activity
  int scan_chunk = 32;
  std::uint64_t seed = 1;
  double barrier_cost_ns = 400.0;
  int max_rounds = 256;  ///< safety bound; the heuristic converges long before
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct ColoringResult {
  std::vector<std::uint32_t> color;  ///< 1-based; 0 = uncolored (never final)
  std::uint32_t colors_used = 0;
  int rounds = 0;
  std::uint64_t recolor_requests = 0;
  double total_time_ns = 0;
  htm::HtmStats stats;
};

ColoringResult run_boman_coloring(htm::DesMachine& machine,
                                  const graph::Graph& graph,
                                  const ColoringOptions& options);

/// True iff no edge connects two equal non-zero colors and all vertices
/// are colored.
bool validate_coloring(const graph::Graph& graph,
                       const std::vector<std::uint32_t>& color);

}  // namespace aam::algorithms
