#pragma once

// Boruvka minimum spanning tree / forest (§3.3.3), FR & MF.
//
// Each round, every component finds its minimum-weight outgoing edge and
// the components at its endpoints are merged by a transaction that links
// one component root under the other. Two concurrent merges touching the
// same components conflict; one of them fails at the algorithm level
// (May-Fail) and the spawner learns about it (Fire-and-Return) — the edge
// is simply retried in the next round if still relevant.
//
// Weights are expected to be distinct (tie-broken by edge id internally),
// which makes the MST unique and equal to the Kruskal reference.

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct BoruvkaOptions {
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  int batch = 4;  ///< merges attempted per coarse activity
  double barrier_cost_ns = 600.0;
  int max_rounds = 64;
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct BoruvkaResult {
  double total_weight = 0;
  std::uint64_t edges_in_forest = 0;
  int rounds = 0;
  std::uint64_t failed_merges = 0;  ///< algorithm-level May-Fail events
  double total_time_ns = 0;
  htm::HtmStats stats;
};

/// Runs Boruvka on a weighted graph (Graph::from_weighted_edges).
BoruvkaResult run_boruvka(htm::DesMachine& machine, const graph::Graph& graph,
                          const BoruvkaOptions& options);

/// Kruskal reference: total weight of the minimum spanning forest.
double mst_reference_weight(const graph::Graph& graph);

}  // namespace aam::algorithms
