#include "algorithms/st_connectivity.hpp"

#include <memory>
#include <vector>

#include "algorithms/operators.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

namespace {

using graph::Vertex;

constexpr std::uint32_t kWhite = 0;
constexpr std::uint32_t kGrey = 1;   // the s-wave
constexpr std::uint32_t kGreen = 2;  // the t-wave

struct Candidate {
  Vertex vertex;
  std::uint32_t color;
};

struct StState {
  const graph::Graph* graph = nullptr;
  StConnOptions options;
  std::span<std::uint32_t> color;
  core::ActivityExecutor* executor = nullptr;
  std::vector<Candidate> frontier;  // both waves interleaved
  core::ChunkCursor* cursor = nullptr;
  bool connected = false;  // set by failure handlers; stops the traversal
  std::uint64_t colored = 1;
};

class StWorker : public htm::Worker {
 public:
  explicit StWorker(StState& state) : state_(state) {}

  void start_level() { done_scanning_ = false; }
  std::vector<Candidate>& next_frontier() { return next_frontier_; }

  bool next(htm::ThreadCtx& ctx) override {
    if (state_.connected) return false;  // failure handler fired: stop
    const int m = state_.options.batch;
    if (static_cast<int>(pending_.size()) >= m) {
      visit(ctx, static_cast<std::size_t>(m));
      return true;
    }
    if (!done_scanning_) {
      std::uint64_t begin = 0, end = 0;
      if (state_.cursor->claim(
              ctx, state_.frontier.size(),
              static_cast<std::uint32_t>(state_.options.scan_chunk), begin,
              end)) {
        for (std::uint64_t i = begin; i < end; ++i) {
          const Candidate c = state_.frontier[i];
          for (Vertex w : state_.graph->neighbors(c.vertex)) {
            // Pre-check: already-owned vertices of our own wave are skipped;
            // other-wave colors still go through the operator, which is
            // where connectivity is detected.
            if (ctx.load(state_.color[w]) == c.color) continue;
            pending_.push_back({w, c.color});
          }
        }
        return true;
      }
      done_scanning_ = true;
    }
    if (!pending_.empty()) {
      visit(ctx, pending_.size());
      return true;
    }
    return false;
  }

  // Checkpoint support; batch_ is never live at a safe instant.
  void save(util::BlobWriter& w) const {
    w.put_vector(pending_);
    w.put_vector(next_frontier_);
    w.put<std::uint8_t>(done_scanning_ ? 1 : 0);
  }
  void restore(util::BlobReader& r) {
    pending_ = r.get_vector<Candidate>();
    next_frontier_ = r.get_vector<Candidate>();
    done_scanning_ = r.get<std::uint8_t>() != 0;
    batch_.clear();
  }

 private:
  // FR results are packed into the executor's 64-bit emissions: a claimed
  // vertex carries its wave color in the upper half; the distinguished
  // kHitMark value reports "the other wave owns it" (bit 63 is never set
  // by a claim because colors are tiny).
  static constexpr std::uint64_t kHitMark = std::uint64_t{1} << 63;
  static std::uint64_t pack(const Candidate& c) {
    return (static_cast<std::uint64_t>(c.color) << 32) | c.vertex;
  }

  // The Listing 6 operator (ops::st_visit), batched: emits kHitMark when
  // the two waves meet. FR & AS: the result always reaches the spawner.
  void visit(htm::ThreadCtx& ctx, std::size_t count) {
    batch_.assign(pending_.end() - static_cast<std::ptrdiff_t>(count),
                  pending_.end());
    pending_.resize(pending_.size() - count);
    core::execute_batch(
        *state_.executor, ctx, batch_.size(),
        [this](auto& access, std::uint64_t i) {
          const Candidate& c = batch_[i];
          ops::st_visit(access, state_.color, c.vertex, c.color, kWhite,
                        kHitMark, pack(c));
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> results) {
          // Spawner-side failure handler (§3.3.4): terminate on contact.
          for (std::uint64_t r : results) {
            if (r == kHitMark) {
              state_.connected = true;
              continue;
            }
            ++state_.colored;
            next_frontier_.push_back(
                {static_cast<Vertex>(r & 0xffffffffu),
                 static_cast<std::uint32_t>(r >> 32)});
          }
        },
        core::OperatorId::kStVisit);
  }

  StState& state_;
  std::vector<Candidate> pending_;
  std::vector<Candidate> batch_;
  std::vector<Candidate> next_frontier_;
  bool done_scanning_ = false;
};

}  // namespace

StConnResult run_st_connectivity(htm::DesMachine& machine,
                                 const graph::Graph& graph,
                                 const StConnOptions& options) {
  const Vertex n = graph.num_vertices();
  AAM_CHECK(options.s < n && options.t < n);
  AAM_CHECK(options.s != options.t);

  StState state;
  state.graph = &graph;
  state.options = options;
  state.color = machine.heap().alloc<std::uint32_t>(n, "stconn.color");
  auto executor = core::make_executor(
      options.mechanism, machine,
      {.batch = options.batch, .decorator = options.decorator,
       .auto_policy = options.auto_policy});
  state.executor = executor.get();
  core::ChunkCursor cursor(machine.heap());
  state.cursor = &cursor;

  state.color[options.s] = kGrey;
  state.color[options.t] = kGreen;
  state.colored = 2;
  state.frontier = {{options.s, kGrey}, {options.t, kGreen}};

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  std::vector<std::unique_ptr<StWorker>> workers;
  for (int t = 0; t < machine.num_threads(); ++t) {
    workers.push_back(std::make_unique<StWorker>(state));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  StConnResult result;
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    ++result.levels;
    if (state.connected) return false;
    std::vector<Candidate> next;
    for (auto& w : workers) {
      next.insert(next.end(), w->next_frontier().begin(),
                  w->next_frontier().end());
      w->next_frontier().clear();
    }
    if (next.empty()) return false;  // waves exhausted: not connected
    state.frontier = std::move(next);
    cursor.reset_direct();
    for (auto& w : workers) w->start_level();
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put_vector(state.frontier);
             w.put<std::uint8_t>(state.connected ? 1 : 0);
             w.put<std::uint64_t>(state.colored);
             w.put<std::int32_t>(result.levels);
             executor->save_state(w);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             state.frontier = r.get_vector<Candidate>();
             state.connected = r.get<std::uint8_t>() != 0;
             state.colored = r.get<std::uint64_t>();
             result.levels = r.get<std::int32_t>();
             executor->restore_state(r);
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.connected = state.connected;
  result.total_time_ns = machine.makespan();
  result.vertices_colored = state.colored;
  result.stats = machine.stats();
  return result;
}

}  // namespace aam::algorithms
