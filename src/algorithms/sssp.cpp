#include "algorithms/sssp.hpp"

#include <limits>
#include <memory>
#include <queue>

#include "algorithms/operators.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

namespace {

using graph::Vertex;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Relax {
  Vertex vertex;
  double distance;
};

struct SsspState {
  const graph::Graph* graph = nullptr;
  SsspOptions options;
  std::span<double> distance;
  core::ActivityExecutor* executor = nullptr;
  std::vector<Vertex> frontier;
  core::ChunkCursor* cursor = nullptr;
  std::uint64_t relaxations = 0;
};

class SsspWorker : public htm::Worker {
 public:
  explicit SsspWorker(SsspState& state) : state_(state) {}

  void start_round() { done_scanning_ = false; }
  std::vector<Vertex>& next_frontier() { return next_frontier_; }

  bool next(htm::ThreadCtx& ctx) override {
    const int m = state_.options.batch;
    if (static_cast<int>(pending_.size()) >= m) {
      visit(ctx, static_cast<std::size_t>(m));
      return true;
    }
    if (!done_scanning_) {
      std::uint64_t begin = 0, end = 0;
      if (state_.cursor->claim(
              ctx, state_.frontier.size(),
              static_cast<std::uint32_t>(state_.options.scan_chunk), begin,
              end)) {
        scan(ctx, begin, end);
        return true;
      }
      done_scanning_ = true;
    }
    if (!pending_.empty()) {
      visit(ctx, pending_.size());
      return true;
    }
    return false;
  }

  // Checkpoint support; batch_ is never live at a safe instant.
  void save(util::BlobWriter& w) const {
    w.put_vector(pending_);
    w.put_vector(next_frontier_);
    w.put<std::uint8_t>(done_scanning_ ? 1 : 0);
  }
  void restore(util::BlobReader& r) {
    pending_ = r.get_vector<Relax>();
    next_frontier_ = r.get_vector<Vertex>();
    done_scanning_ = r.get<std::uint8_t>() != 0;
    batch_.clear();
  }

 private:
  void scan(htm::ThreadCtx& ctx, std::uint64_t begin, std::uint64_t end) {
    const auto& g = *state_.graph;
    for (std::uint64_t i = begin; i < end; ++i) {
      const Vertex u = state_.frontier[i];
      const double du = ctx.load(state_.distance[u]);
      const auto nbrs = g.neighbors(u);
      const auto ws = g.weights(u);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const double cand = du + static_cast<double>(ws[e]);
        // Pre-check: skip relaxations that cannot improve (stale read is
        // fine; the transactional operator re-checks).
        if (ctx.load(state_.distance[nbrs[e]]) <= cand) continue;
        pending_.push_back({nbrs[e], cand});
      }
    }
  }

  // The BFS operator of Listing 4 with a distance payload: FF & MF.
  void visit(htm::ThreadCtx& ctx, std::size_t count) {
    batch_.assign(pending_.end() - static_cast<std::ptrdiff_t>(count),
                  pending_.end());
    pending_.resize(pending_.size() - count);
    core::execute_batch(
        *state_.executor, ctx, batch_.size(),
        [this](auto& access, std::uint64_t i) {
          const Relax& r = batch_[i];
          if (ops::sssp_relax(access, state_.distance, r.vertex, r.distance)) {
            access.emit(r.vertex);
          }
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> improved) {
          state_.relaxations += improved.size();
          for (std::uint64_t v : improved) {
            next_frontier_.push_back(static_cast<Vertex>(v));
          }
        },
        core::OperatorId::kSsspRelax);
  }

  SsspState& state_;
  std::vector<Relax> pending_;
  std::vector<Relax> batch_;
  std::vector<Vertex> next_frontier_;
  bool done_scanning_ = false;
};

}  // namespace

SsspResult run_sssp(htm::DesMachine& machine, const graph::Graph& graph,
                    const SsspOptions& options) {
  AAM_CHECK_MSG(graph.has_weights(), "SSSP needs a weighted graph");
  const Vertex n = graph.num_vertices();
  AAM_CHECK(options.source < n);

  SsspState state;
  state.graph = &graph;
  state.options = options;
  state.distance = machine.heap().alloc<double>(n, "sssp.distance");
  for (Vertex v = 0; v < n; ++v) state.distance[v] = kInf;
  state.distance[options.source] = 0.0;
  state.frontier = {options.source};
  auto executor = core::make_executor(
      options.mechanism, machine,
      {.batch = options.batch, .decorator = options.decorator,
       .auto_policy = options.auto_policy});
  state.executor = executor.get();
  core::ChunkCursor cursor(machine.heap());
  state.cursor = &cursor;

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  std::vector<std::unique_ptr<SsspWorker>> workers;
  for (int t = 0; t < machine.num_threads(); ++t) {
    workers.push_back(std::make_unique<SsspWorker>(state));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  SsspResult result;
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    ++result.rounds;
    std::vector<Vertex> next;
    for (auto& w : workers) {
      next.insert(next.end(), w->next_frontier().begin(),
                  w->next_frontier().end());
      w->next_frontier().clear();
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next.empty()) return false;
    state.frontier = std::move(next);
    cursor.reset_direct();
    for (auto& w : workers) w->start_round();
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put_vector(state.frontier);
             w.put<std::uint64_t>(state.relaxations);
             w.put<std::int32_t>(result.rounds);
             executor->save_state(w);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             state.frontier = r.get_vector<Vertex>();
             state.relaxations = r.get<std::uint64_t>();
             result.rounds = r.get<std::int32_t>();
             executor->restore_state(r);
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.distance.assign(state.distance.begin(), state.distance.end());
  result.relaxations = state.relaxations;
  result.total_time_ns = machine.makespan();
  result.stats = machine.stats();
  return result;
}

std::vector<double> sssp_reference(const graph::Graph& graph,
                                   graph::Vertex source) {
  const Vertex n = graph.num_vertices();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  using Entry = std::pair<double, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    const auto nbrs = graph.neighbors(u);
    const auto ws = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double cand = d + static_cast<double>(ws[i]);
      if (cand < dist[nbrs[i]]) {
        dist[nbrs[i]] = cand;
        queue.push({cand, nbrs[i]});
      }
    }
  }
  return dist;
}

}  // namespace aam::algorithms
