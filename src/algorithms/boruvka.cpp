#include "algorithms/boruvka.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "algorithms/operators.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

namespace {

using graph::Vertex;

struct MergeEdge {
  Vertex u = graph::kInvalidVertex;
  Vertex v = graph::kInvalidVertex;
  float weight = 0;
  std::uint64_t id = 0;  ///< deterministic tie-break
};

bool lighter(const MergeEdge& a, const MergeEdge& b) {
  if (a.weight != b.weight) return a.weight < b.weight;
  return a.id < b.id;
}

struct BoruvkaState {
  const graph::Graph* graph = nullptr;
  BoruvkaOptions options;
  std::span<Vertex> parent;  ///< union-find forest on the SimHeap
  core::ActivityExecutor* executor = nullptr;
  std::vector<MergeEdge> merges;  ///< this round's candidate merges
  core::ChunkCursor* scan_cursor = nullptr;
  core::ChunkCursor* merge_cursor = nullptr;
  bool scanning_phase = true;
  std::uint64_t failed_merges = 0;
  double total_weight = 0;
  std::uint64_t edges_in_forest = 0;
};

class BoruvkaWorker : public htm::Worker {
 public:
  explicit BoruvkaWorker(BoruvkaState& state) : state_(state) {}

  std::vector<std::pair<Vertex, MergeEdge>>& min_edges() { return min_edges_; }

  bool next(htm::ThreadCtx& ctx) override {
    return state_.scanning_phase ? scan_step(ctx) : merge_step(ctx);
  }

  // Checkpoint support; batch_ is never live at a safe instant.
  // (std::pair is not trivially copyable, so the entries go field-wise.)
  void save(util::BlobWriter& w) const {
    w.put<std::uint64_t>(min_edges_.size());
    for (const auto& [root, edge] : min_edges_) {
      w.put<Vertex>(root);
      w.put<MergeEdge>(edge);
    }
  }
  void restore(util::BlobReader& r) {
    min_edges_.clear();
    const auto count = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto root = r.get<Vertex>();
      const auto edge = r.get<MergeEdge>();
      min_edges_.emplace_back(root, edge);
    }
    batch_.clear();
  }

 private:
  // Phase A: find, per component, the minimum outgoing edge. Threads scan
  // vertex ranges and keep thread-local minima; the round hook reduces.
  bool scan_step(htm::ThreadCtx& ctx) {
    std::uint64_t begin = 0, end = 0;
    if (!state_.scan_cursor->claim(ctx, state_.graph->num_vertices(), 256,
                                   begin, end)) {
      return false;
    }
    const auto& g = *state_.graph;
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto v = static_cast<Vertex>(i);
      const Vertex rv = find_root(ctx, v);
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const Vertex w = nbrs[e];
        if (find_root(ctx, w) == rv) continue;  // internal edge
        const MergeEdge cand{v, w, ws[e],
                             static_cast<std::uint64_t>(
                                 std::min(v, w)) << 32 | std::max(v, w)};
        upsert_min(rv, cand);
      }
    }
    return true;
  }

  void upsert_min(Vertex root, const MergeEdge& cand) {
    for (auto& [r, edge] : min_edges_) {
      if (r == root) {
        if (lighter(cand, edge)) edge = cand;
        return;
      }
    }
    min_edges_.emplace_back(root, cand);
  }

  // Root lookup with modelled per-hop loads (no path compression: keeps
  // the transactional variant's chains identical to what it re-reads).
  Vertex find_root(htm::ThreadCtx& ctx, Vertex v) const {
    Vertex r = v;
    while (true) {
      const Vertex p = ctx.load(state_.parent[r]);
      if (p == r) return r;
      r = p;
    }
  }

  // Phase B: merge transactions (Listing 5 shape). MF: a merge whose
  // components were already united by a concurrent activity does nothing
  // and reports the failure.
  bool merge_step(htm::ThreadCtx& ctx) {
    std::uint64_t begin = 0, end = 0;
    if (!state_.merge_cursor->claim(
            ctx, state_.merges.size(),
            static_cast<std::uint32_t>(state_.options.batch), begin, end)) {
      return false;
    }
    batch_.assign(state_.merges.begin() + static_cast<std::ptrdiff_t>(begin),
                  state_.merges.begin() + static_cast<std::ptrdiff_t>(end));
    // A merge that won emits its 1-based batch index; anything missing
    // from the results lost the race (MF) and is reported as failed.
    core::execute_batch(
        *state_.executor, ctx, batch_.size(),
        [this](auto& access, std::uint64_t i) {
          const MergeEdge& m = batch_[i];
          if (ops::uf_union(access, state_.parent, m.u, m.v)) {
            access.emit(i + 1);
          }
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> applied) {
          state_.failed_merges += batch_.size() - applied.size();
          for (std::uint64_t r : applied) {
            const MergeEdge& m = batch_[r - 1];
            state_.total_weight += m.weight;
            ++state_.edges_in_forest;
          }
        },
        core::OperatorId::kUfUnion);
    return true;
  }

  BoruvkaState& state_;
  std::vector<std::pair<Vertex, MergeEdge>> min_edges_;
  std::vector<MergeEdge> batch_;
};

}  // namespace

BoruvkaResult run_boruvka(htm::DesMachine& machine, const graph::Graph& graph,
                          const BoruvkaOptions& options) {
  AAM_CHECK_MSG(graph.has_weights(), "Boruvka needs a weighted graph");
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);

  BoruvkaState state;
  state.graph = &graph;
  state.options = options;
  state.parent = machine.heap().alloc<Vertex>(n, "boruvka.parent");
  for (Vertex v = 0; v < n; ++v) state.parent[v] = v;
  auto executor = core::make_executor(
      options.mechanism, machine,
      {.batch = options.batch, .decorator = options.decorator,
       .auto_policy = options.auto_policy});
  state.executor = executor.get();
  core::ChunkCursor scan_cursor(machine.heap());
  core::ChunkCursor merge_cursor(machine.heap());
  state.scan_cursor = &scan_cursor;
  state.merge_cursor = &merge_cursor;

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  std::vector<std::unique_ptr<BoruvkaWorker>> workers;
  for (int t = 0; t < machine.num_threads(); ++t) {
    workers.push_back(std::make_unique<BoruvkaWorker>(state));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  BoruvkaResult result;
  std::uint64_t merges_before_round = 0;
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    if (state.scanning_phase) {
      // Reduce the per-thread minima into one candidate edge per component.
      std::vector<std::pair<Vertex, MergeEdge>> best;
      for (auto& w : workers) {
        for (const auto& [root, edge] : w->min_edges()) {
          bool found = false;
          for (auto& [r, e] : best) {
            if (r == root) {
              if (lighter(edge, e)) e = edge;
              found = true;
              break;
            }
          }
          if (!found) best.emplace_back(root, edge);
        }
        w->min_edges().clear();
      }
      if (best.empty()) return false;  // forest complete
      state.merges.clear();
      for (auto& [root, edge] : best) state.merges.push_back(edge);
      state.scanning_phase = false;
      merges_before_round = state.edges_in_forest;
      merge_cursor.reset_direct();
      m.barrier_release(options.barrier_cost_ns);
      return true;
    }
    // Merge phase finished: back to scanning, unless nothing merged (then
    // every candidate failed => the remaining candidates were stale and
    // the forest is already maximal) or the round budget ran out.
    ++result.rounds;
    const bool progressed = state.edges_in_forest > merges_before_round;
    if (!progressed || result.rounds >= options.max_rounds) return false;
    state.scanning_phase = true;
    scan_cursor.reset_direct();
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put_vector(state.merges);
             w.put<std::uint8_t>(state.scanning_phase ? 1 : 0);
             w.put<std::uint64_t>(state.failed_merges);
             w.put<double>(state.total_weight);
             w.put<std::uint64_t>(state.edges_in_forest);
             w.put<std::int32_t>(result.rounds);
             w.put<std::uint64_t>(merges_before_round);
             executor->save_state(w);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             state.merges = r.get_vector<MergeEdge>();
             state.scanning_phase = r.get<std::uint8_t>() != 0;
             state.failed_merges = r.get<std::uint64_t>();
             state.total_weight = r.get<double>();
             state.edges_in_forest = r.get<std::uint64_t>();
             result.rounds = r.get<std::int32_t>();
             merges_before_round = r.get<std::uint64_t>();
             executor->restore_state(r);
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.total_weight = state.total_weight;
  result.edges_in_forest = state.edges_in_forest;
  result.failed_merges = state.failed_merges;
  result.total_time_ns = machine.makespan();
  result.stats = machine.stats();
  return result;
}

double mst_reference_weight(const graph::Graph& graph) {
  struct Edge {
    Vertex u, v;
    float w;
    std::uint64_t id;
  };
  std::vector<Edge> edges;
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    const auto nbrs = graph.neighbors(u);
    const auto ws = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        edges.push_back({u, nbrs[i], ws[i],
                         static_cast<std::uint64_t>(u) << 32 | nbrs[i]});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.id < b.id;
  });
  std::vector<Vertex> parent(graph.num_vertices());
  std::iota(parent.begin(), parent.end(), Vertex{0});
  auto find = [&](Vertex v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  double total = 0;
  for (const Edge& e : edges) {
    const Vertex ru = find(e.u);
    const Vertex rv = find(e.v);
    if (ru == rv) continue;
    parent[std::max(ru, rv)] = std::min(ru, rv);
    total += e.w;
  }
  return total;
}

}  // namespace aam::algorithms
