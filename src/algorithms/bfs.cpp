#include "algorithms/bfs.hpp"

#include <algorithm>

#include "algorithms/operators.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "graph/gstats.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

namespace {

using graph::Vertex;
using graph::kInvalidVertex;

struct Candidate {
  Vertex vertex;
  Vertex parent;
};

// Shared state of one BFS execution.
struct BfsState {
  const graph::Graph* graph = nullptr;
  BfsOptions options;

  // On the SimHeap: the vertex state touched through the executor.
  std::span<Vertex> parent;   ///< kInvalidVertex = unvisited
  core::ActivityExecutor* executor = nullptr;

  // Host-side frontier management (runtime metadata, not simulated data).
  std::vector<Vertex> frontier;
  // Edge-balanced work division: prefix[i] = edges of frontier[0..i); a
  // work unit is a contiguous *edge* range, so a high-degree hub's
  // adjacency is scanned by many threads (as in the Graph500 reference).
  std::vector<std::uint64_t> prefix;
  core::ChunkCursor* cursor = nullptr;

  std::uint64_t edges_scanned = 0;

  void build_prefix(const graph::Graph& g) {
    prefix.resize(frontier.size() + 1);
    prefix[0] = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      prefix[i + 1] = prefix[i] + g.degree(frontier[i]);
    }
  }
};

class BfsWorker : public htm::Worker {
 public:
  BfsWorker(BfsState& state) : state_(state) {}

  void start_level() { done_scanning_ = false; }
  std::vector<Vertex>& next_frontier() { return next_frontier_; }

  bool next(htm::ThreadCtx& ctx) override {
    const int m = state_.options.batch;
    // A full batch of unvisited candidates: visit them.
    if (static_cast<int>(pending_.size()) >= m) {
      visit_pending(ctx, static_cast<std::size_t>(m));
      return true;
    }
    if (!done_scanning_) {
      std::uint64_t begin = 0;
      std::uint64_t end = 0;
      if (state_.cursor->claim(ctx, state_.prefix.back(),
                               static_cast<std::uint32_t>(
                                   state_.options.scan_chunk),
                               begin, end)) {
        scan(ctx, begin, end);
        return true;
      }
      done_scanning_ = true;
    }
    if (!pending_.empty()) {
      visit_pending(ctx, pending_.size());
      return true;
    }
    return false;  // level finished for this thread
  }

  // Checkpoint support: everything that survives across dispatches.
  // batch_ is only live while a staged transaction is in flight, which
  // checkpoint-safe instants exclude.
  void save(util::BlobWriter& w) const {
    w.put_vector(pending_);
    w.put_vector(next_frontier_);
    w.put<std::uint8_t>(done_scanning_ ? 1 : 0);
  }
  void restore(util::BlobReader& r) {
    pending_ = r.get_vector<Candidate>();
    next_frontier_ = r.get_vector<Vertex>();
    done_scanning_ = r.get<std::uint8_t>() != 0;
    batch_.clear();
  }

 private:
  // Expands the frontier *edge* range [begin, end): per-edge scan cost
  // plus the visited pre-check on each neighbor.
  void scan(htm::ThreadCtx& ctx, std::uint64_t begin, std::uint64_t end) {
    const auto& g = *state_.graph;
    const auto& prefix = state_.prefix;
    // First frontier entry whose edge range intersects [begin, end).
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(prefix.begin(), prefix.end(), begin) -
        prefix.begin() - 1);
    std::uint64_t edges = 0;
    for (; i < state_.frontier.size() && prefix[i] < end; ++i) {
      const Vertex u = state_.frontier[i];
      const auto nbrs = g.neighbors(u);
      const std::uint64_t lo = begin > prefix[i] ? begin - prefix[i] : 0;
      const std::uint64_t hi = std::min<std::uint64_t>(end - prefix[i],
                                                       nbrs.size());
      for (std::uint64_t e = lo; e < hi; ++e) {
        const Vertex w = nbrs[e];
        ++edges;
        // Pre-check (plain load): skip already-visited neighbors.
        if (ctx.load(state_.parent[w]) != kInvalidVertex) continue;
        pending_.push_back({w, u});
      }
    }
    state_.edges_scanned += edges;
  }

  // One coarse activity visits `count` candidates (Listing 4/8). FF & MF:
  // a candidate whose vertex got visited meanwhile is silently dropped —
  // that is an algorithm-level May-Fail, not a hardware abort. The §4.2
  // runtime optimization re-checks visited with a plain load right before
  // handing the batch to the executor, so stale duplicates never enter a
  // transactional read set.
  void visit_pending(htm::ThreadCtx& ctx, std::size_t count) {
    batch_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const Candidate c = pending_.back();
      pending_.pop_back();
      if (ctx.load(state_.parent[c.vertex]) != kInvalidVertex) continue;
      batch_.push_back(c);
    }
    if (batch_.empty()) return;
    core::execute_batch(
        *state_.executor, ctx, batch_.size(),
        [this](auto& access, std::uint64_t i) {
          const Candidate& c = batch_[i];
          if (ops::bfs_visit(access, state_.parent, c.vertex, c.parent)) {
            access.emit(c.vertex);
          }
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> claimed) {
          for (std::uint64_t v : claimed) {
            next_frontier_.push_back(static_cast<Vertex>(v));
          }
        },
        core::OperatorId::kBfsVisit);
  }

  BfsState& state_;
  std::vector<Candidate> pending_;
  std::vector<Candidate> batch_;
  std::vector<Vertex> next_frontier_;
  bool done_scanning_ = false;
};

}  // namespace

BfsResult run_bfs(htm::DesMachine& machine, const graph::Graph& graph,
                  const BfsOptions& options) {
  AAM_CHECK(options.root < graph.num_vertices());
  AAM_CHECK(options.batch >= 1 && options.scan_chunk >= 1);

  const Vertex n = graph.num_vertices();
  BfsState state;
  state.graph = &graph;
  state.options = options;
  state.parent = machine.heap().alloc<Vertex>(n, "bfs.parent");
  auto executor = core::make_executor(
      options.mechanism, machine,
      {.batch = options.batch, .decorator = options.decorator,
       .auto_policy = options.auto_policy});
  state.executor = executor.get();
  core::ChunkCursor cursor(machine.heap());
  state.cursor = &cursor;

  for (Vertex v = 0; v < n; ++v) state.parent[v] = kInvalidVertex;
  state.parent[options.root] = options.root;
  state.frontier = {options.root};
  state.build_prefix(graph);

  machine.reset_clocks(0.0, /*clear_stats=*/true);

  const int threads = machine.num_threads();
  std::vector<std::unique_ptr<BfsWorker>> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(std::make_unique<BfsWorker>(state));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  BfsResult result;
  double level_start = 0.0;
  for (auto& w : workers) w->start_level();

  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    const double now = m.makespan();
    result.level_times_ns.push_back(now - level_start);

    // Gather the next frontier from all workers (deterministic order).
    std::vector<Vertex> next;
    for (auto& w : workers) {
      auto& nf = w->next_frontier();
      next.insert(next.end(), nf.begin(), nf.end());
      nf.clear();
    }
    if (next.empty()) return false;  // traversal complete

    result.vertices_visited += next.size();
    state.frontier = std::move(next);
    state.build_prefix(*state.graph);
    cursor.reset_direct();
    for (auto& w : workers) w->start_level();
    level_start = now + options.barrier_cost_ns;
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  // Crash recovery (src/recovery/): snapshot the host-side driver state
  // alongside the engine — frontier management, per-worker queues, the
  // executor's control state, and the result fields the quiescence hook
  // mutates. No-op when no recovery client is installed.
  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put_vector(state.frontier);
             w.put_vector(state.prefix);
             w.put<std::uint64_t>(state.edges_scanned);
             w.put_vector(result.level_times_ns);
             w.put<std::uint64_t>(result.vertices_visited);
             w.put<double>(level_start);
             executor->save_state(w);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             state.frontier = r.get_vector<Vertex>();
             state.prefix = r.get_vector<std::uint64_t>();
             state.edges_scanned = r.get<std::uint64_t>();
             result.level_times_ns = r.get_vector<double>();
             result.vertices_visited = r.get<std::uint64_t>();
             level_start = r.get<double>();
             executor->restore_state(r);
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.vertices_visited += 1;  // the root
  result.total_time_ns = machine.makespan();
  result.edges_scanned = state.edges_scanned;
  result.stats = machine.stats();
  result.parent.assign(state.parent.begin(), state.parent.end());
  return result;
}

bool validate_bfs_tree(const graph::Graph& graph, graph::Vertex root,
                       const std::vector<graph::Vertex>& parent) {
  if (parent.size() != graph.num_vertices()) return false;
  if (parent[root] != root) return false;

  const auto levels = graph::bfs_levels(graph, root);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const bool reachable = levels[v] != graph::kInvalidLevel;
    const bool visited = parent[v] != kInvalidVertex;
    if (reachable != visited) return false;
    if (!visited || v == root) continue;
    // The parent edge must exist...
    const Vertex p = parent[v];
    if (p >= graph.num_vertices()) return false;
    const auto nbrs = graph.neighbors(p);
    if (std::find(nbrs.begin(), nbrs.end(), v) == nbrs.end()) return false;
    // ...and the parent must sit exactly one BFS level above.
    if (levels[p] + 1 != levels[v]) return false;
  }
  return true;
}

}  // namespace aam::algorithms
