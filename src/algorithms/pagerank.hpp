#pragma once

// PageRank (§3.3.1, §6.2).
//
// Vertex-centric *push* formulation (Listing 3): the operator for vertex v
// adds (1-d)/|V| to v's own rank and pushes d * old_rank(v) / out_deg(v)
// onto each neighbor's rank. Stale ranks from the previous iteration feed
// the new ones (Jacobi iteration). Message class FF & AS: every activity
// must eventually commit, and conflicting rank accumulations are exactly
// the workload where HTM pays for aborts (§5.4.2) unless coarsened /
// coalesced.

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "htm/des_engine.hpp"

namespace aam::algorithms {

struct PageRankOptions {
  int iterations = 10;
  double damping = 0.85;
  int batch = 16;  ///< M: vertex operators per coarse activity
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
  /// --mechanism=auto routing table (see core/auto_executor.hpp); when set,
  /// `mechanism` is ignored and batches route per the policy. Must outlive
  /// the run.
  const core::AutoPolicy* auto_policy = nullptr;
};

struct PageRankResult {
  std::vector<double> rank;
  double total_time_ns = 0;
  htm::HtmStats stats;
};

/// Intra-node AAM PageRank: each iteration runs every vertex operator in
/// coarse transactions of M via the AAM runtime.
PageRankResult run_pagerank(htm::DesMachine& machine,
                            const graph::Graph& graph,
                            const PageRankOptions& options);

/// Sequential host reference (same push formulation, same treatment of
/// dangling vertices: their mass is dropped, as in the Graph500-style
/// codes the paper builds on). For validating the parallel results.
std::vector<double> pagerank_reference(const graph::Graph& graph,
                                       int iterations, double damping);

}  // namespace aam::algorithms
