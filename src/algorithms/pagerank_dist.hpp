#pragma once

// Distributed PageRank (§6.2, Fig 7c-e).
//
// The graph is 1-D partitioned over the cluster. Each iteration, every
// node walks its local vertices and *pushes* each edge's contribution
// d * old_rank(v) / out_deg(v) to the owner of the target vertex as an
// atomic active message item (packing the target vertex and the
// contribution into 64 bits).
//
// Two execution modes reproduce the paper's comparison:
//
//   kAam  — contributions are coalesced C per message and applied at the
//           owner in ONE coarse hardware transaction per batch, using all
//           T threads per node. This amortizes the expensive ACC-style
//           conflicts of §5.4.2 exactly as §5.6.1 describes.
//   kPbgl — the Parallel Boost Graph Library stand-in: the same AM push,
//           but applied item-by-item with atomic accumulates plus the
//           generic per-item software overhead of a general-purpose AM
//           framework, with PBGL's shallower message buffering.
//           (Substitution note: real PBGL processes incoming edges and
//           runs one process per core; the stand-in keeps the properties
//           the paper credits for the performance gap — no coarse
//           transactions, higher per-item overhead, weaker coalescing.)

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "net/cluster.hpp"

namespace aam::algorithms {

enum class DistPrMode { kAam, kPbgl };

const char* to_string(DistPrMode mode);

struct DistPrOptions {
  int iterations = 5;
  double damping = 0.85;
  DistPrMode mode = DistPrMode::kAam;
  int coalesce = 16;       ///< C (AAM); the PBGL stand-in uses min(C, 4)
  int local_batch = 16;    ///< M for locally-executed batches
  /// Synchronization mechanism for the AAM mode's receiver-side batches.
  core::Mechanism mechanism = core::Mechanism::kHtmCoarsened;
  double pbgl_item_overhead_ns = 300.0;  ///< generic AM framework cost/item
  double barrier_cost_ns = 3000.0;       ///< per-iteration global barrier
  /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
  core::ExecutorDecorator* decorator = nullptr;
};

struct DistPrResult {
  std::vector<double> rank;
  double total_time_ns = 0;
  htm::HtmStats stats;
  net::NetStats net;
};

/// Runs distributed PageRank on `cluster`; state lives on its heap.
DistPrResult run_distributed_pagerank(net::Cluster& cluster,
                                      const graph::Graph& graph,
                                      const graph::Block1D& part,
                                      const DistPrOptions& options);

}  // namespace aam::algorithms
