#include "algorithms/coloring.hpp"

#include <algorithm>
#include <memory>

#include "algorithms/operators.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::algorithms {

namespace {

using graph::Vertex;

struct ColorState {
  const graph::Graph* graph = nullptr;
  ColoringOptions options;
  std::span<std::uint32_t> color;  // 0 = uncolored
  core::ActivityExecutor* executor = nullptr;
  std::vector<Vertex> worklist;
  core::ChunkCursor* cursor = nullptr;
  std::uint64_t recolor_requests = 0;
};

class ColorWorker : public htm::Worker {
 public:
  ColorWorker(ColorState& state, util::Rng rng) : state_(state), rng_(rng) {}

  void start_round() { done_scanning_ = false; }
  std::vector<Vertex>& next_worklist() { return next_worklist_; }

  bool next(htm::ThreadCtx& ctx) override {
    const int m = state_.options.batch;
    if (static_cast<int>(pending_.size()) >= m) {
      visit(ctx, static_cast<std::size_t>(m));
      return true;
    }
    if (!done_scanning_) {
      std::uint64_t begin = 0, end = 0;
      if (state_.cursor->claim(
              ctx, state_.worklist.size(),
              static_cast<std::uint32_t>(state_.options.scan_chunk), begin,
              end)) {
        for (std::uint64_t i = begin; i < end; ++i) {
          const Vertex v = state_.worklist[i];
          pending_.push_back({v, pick_color(ctx, v)});
        }
        return true;
      }
      done_scanning_ = true;
    }
    if (!pending_.empty()) {
      visit(ctx, pending_.size());
      return true;
    }
    return false;
  }

  // Checkpoint support. The worker RNG is part of the durable state: coin
  // flips after a restore must replay the original draws. batch_/coins_
  // are only live while a staged transaction is in flight (excluded at
  // safe instants); used_ is transient within one pick_color call.
  void save(util::BlobWriter& w) const {
    std::uint64_t rng_state[4];
    rng_.save_state(rng_state);
    for (std::uint64_t word : rng_state) w.put<std::uint64_t>(word);
    w.put_vector(pending_);
    w.put_vector(next_worklist_);
    w.put<std::uint8_t>(done_scanning_ ? 1 : 0);
  }
  void restore(util::BlobReader& r) {
    std::uint64_t rng_state[4];
    for (std::uint64_t& word : rng_state) word = r.get<std::uint64_t>();
    rng_.restore_state(rng_state);
    pending_ = r.get_vector<Tentative>();
    next_worklist_ = r.get_vector<Vertex>();
    done_scanning_ = r.get<std::uint8_t>() != 0;
    batch_.clear();
    coins_.clear();
  }

 private:
  struct Tentative {
    Vertex vertex;
    std::uint32_t color;
  };

  // Smallest color (>= 1) not used by v's neighbors, from a stale snapshot
  // (plain loads): the source of the inter-activity conflicts the failure
  // handler resolves.
  std::uint32_t pick_color(htm::ThreadCtx& ctx, Vertex v) {
    used_.clear();
    for (Vertex w : state_.graph->neighbors(v)) {
      used_.push_back(ctx.load(state_.color[w]));
    }
    std::sort(used_.begin(), used_.end());
    std::uint32_t candidate = 1;
    for (std::uint32_t c : used_) {
      if (c == candidate) ++candidate;
      else if (c > candidate) break;
    }
    return candidate;
  }

  void visit(htm::ThreadCtx& ctx, std::size_t count) {
    batch_.assign(pending_.end() - static_cast<std::ptrdiff_t>(count),
                  pending_.end());
    pending_.resize(pending_.size() - count);
    // Coin flips must be stable across transactional re-execution, so they
    // are drawn outside the body, one per batch entry.
    coins_.clear();
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      coins_.push_back(rng_.next_bool(0.5));
    }
    core::execute_batch(
        *state_.executor, ctx, batch_.size(),
        [this](auto& access, std::uint64_t i) {
          const Tentative t = batch_[i];
          ops::color_assign(access, *state_.graph, state_.color, t.vertex,
                            t.color, coins_[i]);
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> recolor) {
          // Failure handler: schedule the conflicting vertices for the
          // next round.
          state_.recolor_requests += recolor.size();
          for (std::uint64_t v : recolor) {
            next_worklist_.push_back(static_cast<Vertex>(v));
          }
        },
        core::OperatorId::kColorAssign);
  }

  ColorState& state_;
  util::Rng rng_;
  std::vector<Tentative> pending_;
  std::vector<Tentative> batch_;
  std::vector<std::uint32_t> used_;
  std::vector<bool> coins_;
  std::vector<Vertex> next_worklist_;
  bool done_scanning_ = false;
};

}  // namespace

ColoringResult run_boman_coloring(htm::DesMachine& machine,
                                  const graph::Graph& graph,
                                  const ColoringOptions& options) {
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);

  ColorState state;
  state.graph = &graph;
  state.options = options;
  state.color = machine.heap().alloc<std::uint32_t>(n, "coloring.color");
  auto executor = core::make_executor(
      options.mechanism, machine,
      {.batch = options.batch, .decorator = options.decorator,
       .auto_policy = options.auto_policy});
  state.executor = executor.get();
  core::ChunkCursor cursor(machine.heap());
  state.cursor = &cursor;
  state.worklist.resize(n);
  for (Vertex v = 0; v < n; ++v) state.worklist[v] = v;

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  const util::Rng root(options.seed);
  std::vector<std::unique_ptr<ColorWorker>> workers;
  for (int t = 0; t < machine.num_threads(); ++t) {
    workers.push_back(std::make_unique<ColorWorker>(
        state, root.fork(static_cast<std::uint64_t>(t) + 1)));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  ColoringResult result;
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    ++result.rounds;
    std::vector<Vertex> next;
    for (auto& w : workers) {
      next.insert(next.end(), w->next_worklist().begin(),
                  w->next_worklist().end());
      w->next_worklist().clear();
    }
    // The same vertex may be reported by several activities.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next.empty() || result.rounds >= options.max_rounds) return false;
    state.worklist = std::move(next);
    cursor.reset_direct();
    for (auto& w : workers) w->start_round();
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put_vector(state.worklist);
             w.put<std::uint64_t>(state.recolor_requests);
             w.put<std::int32_t>(result.rounds);
             executor->save_state(w);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             state.worklist = r.get_vector<Vertex>();
             state.recolor_requests = r.get<std::uint64_t>();
             result.rounds = r.get<std::int32_t>();
             executor->restore_state(r);
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  result.color.assign(state.color.begin(), state.color.end());
  result.colors_used =
      *std::max_element(result.color.begin(), result.color.end());
  result.recolor_requests = state.recolor_requests;
  result.total_time_ns = machine.makespan();
  result.stats = machine.stats();
  return result;
}

bool validate_coloring(const graph::Graph& graph,
                       const std::vector<std::uint32_t>& color) {
  if (color.size() != graph.num_vertices()) return false;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (color[v] == 0) return false;
    for (Vertex w : graph.neighbors(v)) {
      if (w != v && color[w] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace aam::algorithms
