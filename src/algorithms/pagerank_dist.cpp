#include "algorithms/pagerank_dist.hpp"

#include <bit>

#include "core/distributed.hpp"
#include "htm/resilience.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

using graph::Vertex;

const char* to_string(DistPrMode mode) {
  return mode == DistPrMode::kAam ? "AAM" : "PBGL-like";
}

namespace {

std::uint64_t pack(Vertex w, float contribution) {
  return (static_cast<std::uint64_t>(w) << 32) |
         std::bit_cast<std::uint32_t>(contribution);
}

Vertex unpack_vertex(std::uint64_t item) {
  return static_cast<Vertex>(item >> 32);
}

float unpack_contribution(std::uint64_t item) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(item));
}

// Per-thread pusher: walks its slice of the node's vertices and spawns one
// AAM item per outgoing edge, then helps drain incoming batches.
class PrWorker : public htm::Worker {
 public:
  // `old_rank` is indirect: the iteration hook swaps the rank arrays, and
  // every worker must observe the swap.
  PrWorker(core::DistributedRuntime& rt, const graph::Graph& graph,
           const graph::Block1D& part, std::span<double>* old_rank,
           double damping, Vertex begin, Vertex end)
      : rt_(rt), graph_(graph), part_(part), old_rank_(old_rank),
        damping_(damping), slice_begin_(begin), slice_end_(end) {}

  void start_iteration() {
    pos_ = slice_begin_;
    flushed_ = false;
  }

  bool next(htm::ThreadCtx& ctx) override {
    if (rt_.progress(ctx)) return true;
    if (pos_ < slice_end_) {
      produce_chunk(ctx);
      return true;
    }
    if (!flushed_) {
      flushed_ = true;
      rt_.flush(ctx);
      return true;
    }
    return false;
  }

  // Checkpoint support: the production cursor and flush flag are the
  // worker's only durable state (slice bounds are reconstructed).
  void save(util::BlobWriter& w) const {
    w.put<Vertex>(pos_);
    w.put<std::uint8_t>(flushed_ ? 1 : 0);
  }
  void restore(util::BlobReader& r) {
    pos_ = r.get<Vertex>();
    flushed_ = r.get<std::uint8_t>() != 0;
  }

 private:
  static constexpr Vertex kChunk = 16;

  void produce_chunk(htm::ThreadCtx& ctx) {
    const Vertex stop = std::min<Vertex>(pos_ + kChunk, slice_end_);
    for (; pos_ < stop; ++pos_) {
      const Vertex v = pos_;
      const auto nbrs = graph_.neighbors(v);
      if (nbrs.empty()) continue;
      // Reading the stale local rank: one modelled load per vertex.
      const double share = damping_ * ctx.load((*old_rank_)[v]) /
                           static_cast<double>(nbrs.size());
      for (Vertex w : nbrs) {
        rt_.spawn(ctx, part_.owner(w), pack(w, static_cast<float>(share)));
      }
    }
  }

  core::DistributedRuntime& rt_;
  const graph::Graph& graph_;
  const graph::Block1D& part_;
  std::span<double>* old_rank_;
  double damping_;
  Vertex slice_begin_;
  Vertex slice_end_;
  Vertex pos_ = 0;
  bool flushed_ = true;
};

}  // namespace

DistPrResult run_distributed_pagerank(net::Cluster& cluster,
                                      const graph::Graph& graph,
                                      const graph::Block1D& part,
                                      const DistPrOptions& options) {
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);
  AAM_CHECK(part.num_vertices() == n);
  AAM_CHECK(part.num_nodes() == cluster.num_nodes());

  auto& machine = cluster.machine();
  auto old_rank = machine.heap().alloc<double>(n, "pagerank.rank");
  auto new_rank = machine.heap().alloc<double>(n, "pagerank.rank");
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  for (Vertex v = 0; v < n; ++v) old_rank[v] = 1.0 / static_cast<double>(n);

  machine.reset_clocks(0.0, /*clear_stats=*/true);

  const bool pbgl = options.mode == DistPrMode::kPbgl;
  core::DistributedRuntime::Options rt_options;
  rt_options.coalesce =
      pbgl ? std::min(options.coalesce, 4) : options.coalesce;
  rt_options.local_batch = options.local_batch;
  rt_options.mechanism = options.mechanism;
  rt_options.decorator = options.decorator;
  core::DistributedRuntime rt(cluster, rt_options);

  if (pbgl) {
    rt.set_operator_plain(
        [&](htm::ThreadCtx& ctx, std::uint64_t item) {
          ctx.fetch_add(new_rank[unpack_vertex(item)],
                        static_cast<double>(unpack_contribution(item)));
        },
        options.pbgl_item_overhead_ns);
  } else {
    rt.set_operator(
        [&](auto& access, std::uint64_t item) {
          access.fetch_add(new_rank[unpack_vertex(item)],
                           static_cast<double>(unpack_contribution(item)));
        },
        core::OperatorId::kPagerankPush);
    // Receiver-side sharding by rank cache line (8 doubles per line):
    // same-node transactions become conflict-free (§4.2 optimization).
    rt.set_sharding([](std::uint64_t item) {
      return static_cast<std::uint32_t>(unpack_vertex(item) / 8);
    });
  }

  // One pusher per thread; each covers a slice of its node's partition.
  std::vector<std::unique_ptr<PrWorker>> workers;
  const int tpn = cluster.threads_per_node();
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    const Vertex lo = part.begin(node);
    const Vertex count = part.count(node);
    for (int t = 0; t < tpn; ++t) {
      const Vertex begin =
          lo + count * static_cast<Vertex>(t) / static_cast<Vertex>(tpn);
      const Vertex end =
          lo + count * static_cast<Vertex>(t + 1) / static_cast<Vertex>(tpn);
      workers.push_back(std::make_unique<PrWorker>(
          rt, graph, part, &old_rank, options.damping, begin, end));
      machine.set_worker(cluster.thread_of(node, t), workers.back().get());
    }
  }

  int iterations_left = options.iterations;
  auto begin_iteration = [&] {
    for (Vertex v = 0; v < n; ++v) new_rank[v] = base;
    for (auto& w : workers) w->start_iteration();
  };
  begin_iteration();

  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    AAM_CHECK_MSG(rt.drained(), "quiescence with undrained runtime");
    std::swap(old_rank, new_rank);
    if (--iterations_left == 0) return false;
    begin_iteration();
    m.barrier_release(options.barrier_cost_ns);
    return true;
  });

  // Checkpoint registration. The DistributedRuntime registered its own
  // state at construction; the driver contributes the iteration counter
  // and which heap allocation `old_rank` currently aliases (the hook's
  // std::swap runs after the pre-quiescence checkpoint, so the span
  // identities are durable host state). Worker cursors ride along.
  htm::ScopedHostState ckpt(
      machine.recovery_client(),
      {.save =
           [&](std::vector<std::uint8_t>& out) {
             util::BlobWriter w;
             w.put<std::int32_t>(iterations_left);
             w.put<std::uint8_t>(old_rank.data() < new_rank.data() ? 1 : 0);
             for (auto& wk : workers) wk->save(w);
             out = w.take();
           },
       .restore =
           [&](const std::uint8_t* data, std::size_t len) {
             util::BlobReader r(data, len);
             iterations_left = r.get<std::int32_t>();
             const bool old_is_first = r.get<std::uint8_t>() != 0;
             if ((old_rank.data() < new_rank.data()) != old_is_first) {
               std::swap(old_rank, new_rank);
             }
             for (auto& wk : workers) wk->restore(r);
           }});

  machine.run();
  machine.set_quiescence_hook(nullptr);

  DistPrResult result;
  result.rank.assign(old_rank.begin(), old_rank.end());
  result.total_time_ns = machine.makespan();
  result.stats = machine.stats();
  result.net = cluster.stats();
  return result;
}

}  // namespace aam::algorithms
