#include "algorithms/pagerank.hpp"

#include "algorithms/operators.hpp"
#include "core/runtime.hpp"
#include "util/check.hpp"

namespace aam::algorithms {

using graph::Vertex;

PageRankResult run_pagerank(htm::DesMachine& machine,
                            const graph::Graph& graph,
                            const PageRankOptions& options) {
  const Vertex n = graph.num_vertices();
  AAM_CHECK(n > 0);
  auto old_rank = machine.heap().alloc<double>(n, "pagerank.rank");
  auto new_rank = machine.heap().alloc<double>(n, "pagerank.rank");
  const double init = 1.0 / static_cast<double>(n);
  for (Vertex v = 0; v < n; ++v) old_rank[v] = init;

  machine.reset_clocks(0.0, /*clear_stats=*/true);
  core::AamRuntime runtime(machine, {.batch = options.batch,
                                     .mechanism = options.mechanism,
                                     .decorator = options.decorator,
                                     .auto_policy = options.auto_policy});

  const double d = options.damping;
  const double base = (1.0 - d) / static_cast<double>(n);

  for (int iter = 0; iter < options.iterations; ++iter) {
    for (Vertex v = 0; v < n; ++v) new_rank[v] = 0.0;
    // The Listing 3 operator, executed for every vertex in coarse
    // activities of M (FF & AS). Under kAtomicOps the pushes are
    // fetch-and-accumulates — the paper's ACC formulation.
    runtime.for_each(
        n,
        [&](auto& access, std::uint64_t item) {
          ops::pagerank_push(access, graph, old_rank, new_rank,
                             static_cast<Vertex>(item), base, d);
        },
        core::OperatorId::kPagerankPush);
    std::swap(old_rank, new_rank);
  }

  PageRankResult result;
  result.rank.assign(old_rank.begin(), old_rank.end());
  result.total_time_ns = machine.makespan();
  result.stats = machine.stats();
  return result;
}

std::vector<double> pagerank_reference(const graph::Graph& graph,
                                       int iterations, double damping) {
  const Vertex n = graph.num_vertices();
  std::vector<double> old_rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> new_rank(n);
  const double base = (1.0 - damping) / static_cast<double>(n);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(new_rank.begin(), new_rank.end(), base);
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = graph.neighbors(v);
      if (nbrs.empty()) continue;
      const double share =
          damping * old_rank[v] / static_cast<double>(nbrs.size());
      for (Vertex w : nbrs) new_rank[w] += share;
    }
    std::swap(old_rank, new_rank);
  }
  return old_rank;
}

}  // namespace aam::algorithms
